package graph

import (
	"testing"
	"testing/quick"

	"diggsim/internal/rng"
)

func mustGraph(t *testing.T, n int, edges [][2]NodeID) *Graph {
	t.Helper()
	g, err := FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Friends(0) != nil || g.Fans(0) != nil {
		t.Error("out-of-range adjacency should be nil")
	}
}

func TestBasicAdjacency(t *testing.T) {
	// 0 watches 1 and 2; 1 watches 2. So 2's fans are {0, 1}.
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}})
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if got := g.Friends(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Friends(0) = %v", got)
	}
	if got := g.Fans(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Fans(2) = %v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.InDegree(0) != 0 {
		t.Error("degree mismatch")
	}
}

func TestHasEdge(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {2, 3}})
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("existing edges not found")
	}
	if g.HasEdge(1, 0) {
		t.Error("directionality violated")
	}
	if g.HasEdge(0, 3) || g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("phantom edges")
	}
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d want 1 (dedup + self-loop drop)", g.NumEdges())
	}
}

func TestBuilderImplicitGrowth(t *testing.T) {
	b := &Builder{}
	if err := b.AddEdge(5, 9); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Errorf("NumNodes = %d want 10", g.NumNodes())
	}
	if !g.HasEdge(5, 9) {
		t.Error("edge lost")
	}
}

func TestBuilderNegativeID(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative id accepted")
	}
}

func TestBuilderIncrementalBuilds(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.NumEdges() != 1 {
		t.Errorf("first build mutated: %d edges", g1.NumEdges())
	}
	if g2.NumEdges() != 2 {
		t.Errorf("second build = %d edges", g2.NumEdges())
	}
}

func TestReverse(t *testing.T) {
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) {
		t.Error("reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("reverse kept original edge")
	}
	if r.NumEdges() != g.NumEdges() || r.NumNodes() != g.NumNodes() {
		t.Error("reverse changed counts")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := [][2]NodeID{{0, 1}, {0, 2}, {2, 1}}
	g := mustGraph(t, 3, orig)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v", edges)
	}
	g2, err := FromEdgeList(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range orig {
		if !g2.HasEdge(e[0], e[1]) {
			t.Errorf("round trip lost %v", e)
		}
	}
}

func TestBFS(t *testing.T) {
	// Chain 0->1->2->3, plus isolated 4.
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	dist := BFSFrom(g, 0)
	want := []int{0, 1, 2, 3, -1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("BFS dist = %v want %v", dist, want)
		}
	}
	// BFS follows direction: from 3 nothing is reachable.
	dist = BFSFrom(g, 3)
	if dist[0] != -1 || dist[3] != 0 {
		t.Errorf("directed BFS from sink: %v", dist)
	}
}

func TestComponents(t *testing.T) {
	// Two weak components: {0,1,2} and {3,4}.
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {2, 1}, {3, 4}})
	labels, count := WeaklyConnectedComponents(g)
	if count != 2 {
		t.Fatalf("components = %d want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first component split")
	}
	if labels[3] != labels[4] || labels[0] == labels[3] {
		t.Error("second component wrong")
	}
	if LargestComponentSize(g) != 3 {
		t.Errorf("largest = %d want 3", LargestComponentSize(g))
	}
}

func TestClustering(t *testing.T) {
	// Triangle 0-1-2 (directed cycle) clusters fully.
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}})
	for u := NodeID(0); u < 3; u++ {
		if c := ClusteringCoefficient(g, u); c != 1 {
			t.Errorf("triangle node %d clustering = %v", u, c)
		}
	}
	// Star: center 0 watches 1,2,3; leaves unconnected.
	star := mustGraph(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}})
	if c := ClusteringCoefficient(star, 0); c != 0 {
		t.Errorf("star center clustering = %v", c)
	}
	if c := ClusteringCoefficient(star, 1); c != 0 {
		t.Errorf("degree-1 node clustering = %v", c)
	}
	if m := MeanClustering(g); m != 1 {
		t.Errorf("triangle mean clustering = %v", m)
	}
}

func TestTopByInDegree(t *testing.T) {
	// Node 2 has 2 fans, node 1 has 1 fan, rest 0.
	g := mustGraph(t, 4, [][2]NodeID{{0, 2}, {1, 2}, {0, 1}})
	top := TopByInDegree(g, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Errorf("TopByInDegree = %v", top)
	}
	if got := TopByInDegree(g, 100); len(got) != 4 {
		t.Errorf("k > n should clamp, got %d", len(got))
	}
	if got := TopByInDegree(g, -1); len(got) != 0 {
		t.Errorf("negative k should clamp to 0, got %d", len(got))
	}
}

func TestKCore(t *testing.T) {
	// Clique of 4 (0-3, all directed pairs one way) plus pendant 4.
	edges := [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {4, 0}}
	g := mustGraph(t, 5, edges)
	core := KCore(g, 3)
	if len(core) != 4 {
		t.Fatalf("3-core = %v want nodes 0-3", core)
	}
	for i, u := range core {
		if u != NodeID(i) {
			t.Fatalf("3-core = %v", core)
		}
	}
	if len(KCore(g, 10)) != 0 {
		t.Error("10-core should be empty")
	}
	all := KCore(g, 0)
	if len(all) != 5 {
		t.Error("0-core should contain every node")
	}
}

func TestDegreeDistributions(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 3}, {1, 3}, {2, 3}})
	in := InDegreeDistribution(g)
	if in[3] != 1 || in[0] != 3 {
		t.Errorf("in-degree dist = %v", in)
	}
	out := OutDegreeDistribution(g)
	if out[1] != 3 || out[0] != 1 {
		t.Errorf("out-degree dist = %v", out)
	}
	if MeanDegree(g) != 0.75 {
		t.Errorf("mean degree = %v", MeanDegree(g))
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(1)
	const n, p = 400, 0.01
	g, err := ErdosRenyi(r, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	want := float64(n) * float64(n-1) * p
	got := float64(g.NumEdges())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("edges = %v want ~%v", got, want)
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	r := rng.New(2)
	g, err := ErdosRenyi(r, 10, 0)
	if err != nil || g.NumEdges() != 0 {
		t.Error("p=0 should give empty graph")
	}
	g, err = ErdosRenyi(r, 5, 1)
	if err != nil || g.NumEdges() != 20 {
		t.Errorf("p=1 should give complete digraph, got %d edges", g.NumEdges())
	}
	if _, err := ErdosRenyi(r, -1, 0.5); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := ErdosRenyi(r, 5, 1.5); err == nil {
		t.Error("p > 1 accepted")
	}
	g, err = ErdosRenyi(r, 0, 0.5)
	if err != nil || g.NumNodes() != 0 {
		t.Error("n=0 should give empty graph")
	}
	g, err = ErdosRenyi(r, 1, 0.5)
	if err != nil || g.NumEdges() != 0 {
		t.Error("n=1 has no possible edges")
	}
}

func TestPreferentialAttachmentHeavyTail(t *testing.T) {
	r := rng.New(3)
	const n, m = 3000, 3
	g, err := PreferentialAttachment(r, n, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Heavy tail: max in-degree far above the mean.
	maxIn, sumIn := 0, 0
	for u := NodeID(0); int(u) < n; u++ {
		d := g.InDegree(u)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sumIn) / n
	if float64(maxIn) < 10*mean {
		t.Errorf("max in-degree %d not heavy-tailed vs mean %.2f", maxIn, mean)
	}
	// Every non-seed node watches ~m others.
	deficit := 0
	for u := m + 1; u < n; u++ {
		if g.OutDegree(NodeID(u)) < m {
			deficit++
		}
	}
	if deficit > 0 {
		t.Errorf("%d nodes below out-degree %d", deficit, m)
	}
}

func TestPreferentialAttachmentReciprocity(t *testing.T) {
	r := rng.New(4)
	g, err := PreferentialAttachment(r, 500, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// With reciprocity 1 every edge u->v from the growth step has v->u.
	recip := 0
	for _, e := range g.Edges() {
		if g.HasEdge(e[1], e[0]) {
			recip++
		}
	}
	if frac := float64(recip) / float64(g.NumEdges()); frac < 0.95 {
		t.Errorf("reciprocal fraction = %v want ~1", frac)
	}
}

func TestPreferentialAttachmentErrors(t *testing.T) {
	r := rng.New(5)
	if _, err := PreferentialAttachment(r, 10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := PreferentialAttachment(r, 10, 1, 2); err == nil {
		t.Error("reciprocity 2 accepted")
	}
	g, err := PreferentialAttachment(r, 1, 1, 0)
	if err != nil || g.NumNodes() != 1 {
		t.Error("n=1 should work")
	}
}

func TestConfigurationModel(t *testing.T) {
	r := rng.New(6)
	degs := make([]int, 200)
	for i := range degs {
		degs[i] = 1 + i%5
	}
	g, err := ConfigurationModel(r, degs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Realized in-degree correlates strongly with requested degree.
	var want, got []float64
	for u, d := range degs {
		want = append(want, float64(d))
		got = append(got, float64(g.InDegree(NodeID(u))))
	}
	// Simple check: mean realized degree within 40% of requested mean
	// (duplicates are dropped, so some loss is expected).
	mw, mg := 0.0, 0.0
	for i := range want {
		mw += want[i]
		mg += got[i]
	}
	if mg < 0.6*mw || mg > mw {
		t.Errorf("realized degree mass %v vs requested %v", mg, mw)
	}
	if _, err := ConfigurationModel(r, []int{-1}); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestModular(t *testing.T) {
	r := rng.New(7)
	cfg := ModularConfig{Communities: 4, NodesPerComm: 50, IntraDegree: 6, InterDegree: 0.5}
	g, err := Modular(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if cfg.CommunityOf(e[0]) == cfg.CommunityOf(e[1]) {
			intra++
		} else {
			inter++
		}
	}
	if intra <= 5*inter {
		t.Errorf("modularity too weak: intra=%d inter=%d", intra, inter)
	}
	if _, err := Modular(r, ModularConfig{Communities: 0, NodesPerComm: 5}); err == nil {
		t.Error("0 communities accepted")
	}
	if _, err := Modular(r, ModularConfig{Communities: 2, NodesPerComm: 5, IntraDegree: -1}); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestQuickDegreeSumsMatchEdges(t *testing.T) {
	f := func(seed uint64, rawEdges []uint16) bool {
		b := NewBuilder(0)
		for _, e := range rawEdges {
			from := NodeID(e >> 8)
			to := NodeID(e & 0xff)
			if b.AddEdge(from, to) != nil {
				return false
			}
		}
		g := b.Build()
		sumIn, sumOut := 0, 0
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			sumIn += g.InDegree(u)
			sumOut += g.OutDegree(u)
		}
		return sumIn == g.NumEdges() && sumOut == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickFansFriendsAreInverse(t *testing.T) {
	f := func(rawEdges []uint16) bool {
		b := NewBuilder(0)
		for _, e := range rawEdges {
			b.AddEdge(NodeID(e>>8), NodeID(e&0xff))
		}
		g := b.Build()
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			for _, v := range g.Friends(u) {
				found := false
				for _, w := range g.Fans(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseTwiceIsIdentity(t *testing.T) {
	f := func(rawEdges []uint16) bool {
		b := NewBuilder(0)
		for _, e := range rawEdges {
			b.AddEdge(NodeID(e>>8), NodeID(e&0xff))
		}
		g := b.Build()
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !rr.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDegreeAssortativityBounds(t *testing.T) {
	r := rng.New(8)
	g, err := ErdosRenyi(r, 300, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a := DegreeAssortativity(g)
	if a < -1 || a > 1 {
		t.Errorf("assortativity %v out of [-1, 1]", a)
	}
	empty := NewBuilder(3).Build()
	if DegreeAssortativity(empty) != 0 {
		t.Error("empty graph assortativity should be 0")
	}
}

func BenchmarkBuild10k(b *testing.B) {
	r := rng.New(1)
	bld := NewBuilder(10000)
	for i := 0; i < 50000; i++ {
		bld.AddEdge(NodeID(r.Intn(10000)), NodeID(r.Intn(10000)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bld.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	r := rng.New(2)
	g, _ := PreferentialAttachment(r, 10000, 5, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BFSFrom(g, 0)
	}
}
