package community

import (
	"testing"

	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// twoCliques builds two directed 5-cliques joined by one bridge edge.
func twoCliques(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for c := 0; c < 2; c++ {
		base := c * 5
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+j))
			}
		}
	}
	b.AddEdge(0, 5) // bridge
	return b.Build()
}

func TestNormalize(t *testing.T) {
	p := Normalize([]int{7, 7, 3, 9, 3})
	if p.Count != 3 {
		t.Fatalf("Count = %d", p.Count)
	}
	if p.Labels[0] != p.Labels[1] || p.Labels[2] != p.Labels[4] {
		t.Errorf("grouping broken: %v", p.Labels)
	}
	if p.Labels[0] == p.Labels[2] || p.Labels[0] == p.Labels[3] {
		t.Errorf("distinct groups merged: %v", p.Labels)
	}
	sizes := p.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 5 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	g := twoCliques(t)
	labels := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	q, err := Modularity(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.3 {
		t.Errorf("two-clique modularity = %v; want high", q)
	}
	// A single community scores ~0.
	single := make([]int, 10)
	q1, err := Modularity(g, single)
	if err != nil {
		t.Fatal(err)
	}
	if q1 > 0.01 || q1 < -0.01 {
		t.Errorf("single-community modularity = %v want ~0", q1)
	}
	if q <= q1 {
		t.Error("good split should beat trivial split")
	}
}

func TestModularityErrors(t *testing.T) {
	g := twoCliques(t)
	if _, err := Modularity(g, []int{0}); err == nil {
		t.Error("label mismatch accepted")
	}
	empty := graph.NewBuilder(3).Build()
	q, err := Modularity(empty, []int{0, 1, 2})
	if err != nil || q != 0 {
		t.Errorf("edgeless modularity = %v, %v", q, err)
	}
}

func TestLabelPropagationFindsCliques(t *testing.T) {
	g := twoCliques(t)
	p := LabelPropagation(g, rng.New(1), 50)
	// Both cliques should be internally uniform.
	for c := 0; c < 2; c++ {
		base := c * 5
		for i := 1; i < 5; i++ {
			if p.Labels[base+i] != p.Labels[base] {
				t.Fatalf("clique %d split: %v", c, p.Labels)
			}
		}
	}
	q, err := Modularity(g, p.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count >= 2 && q < 0.3 {
		t.Errorf("label propagation modularity = %v", q)
	}
}

func TestLabelPropagationModularGraph(t *testing.T) {
	r := rng.New(2)
	cfg := graph.ModularConfig{Communities: 4, NodesPerComm: 30, IntraDegree: 8, InterDegree: 0.3}
	g, err := graph.Modular(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := LabelPropagation(g, r, 100)
	q, err := Modularity(g, p.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.3 {
		t.Errorf("modularity on planted partition = %v", q)
	}
	// Compare against the planted truth: detected Q should be close.
	truth := make([]int, g.NumNodes())
	for u := range truth {
		truth[u] = cfg.CommunityOf(graph.NodeID(u))
	}
	qTruth, err := Modularity(g, truth)
	if err != nil {
		t.Fatal(err)
	}
	if q < qTruth-0.2 {
		t.Errorf("detected Q=%v far below planted Q=%v", q, qTruth)
	}
}

func TestLabelPropagationIsolatedNodes(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	p := LabelPropagation(g, rng.New(3), 10)
	if p.Count != 5 {
		t.Errorf("isolated nodes should stay singleton: %v", p.Labels)
	}
}

func TestGirvanNewmanSplitsBridge(t *testing.T) {
	g := twoCliques(t)
	p := GirvanNewman(g, 2)
	if p.Count != 2 {
		t.Fatalf("components = %d want 2", p.Count)
	}
	if p.Labels[0] != p.Labels[4] || p.Labels[5] != p.Labels[9] {
		t.Errorf("cliques split wrongly: %v", p.Labels)
	}
	if p.Labels[0] == p.Labels[5] {
		t.Errorf("bridge not cut: %v", p.Labels)
	}
}

func TestGirvanNewmanClamps(t *testing.T) {
	g := twoCliques(t)
	if p := GirvanNewman(g, 0); p.Count < 1 {
		t.Error("target 0 should clamp to 1")
	}
	p := GirvanNewman(g, 100)
	if p.Count != g.NumNodes() {
		t.Errorf("target > n: got %d communities", p.Count)
	}
}

func TestGirvanNewmanAlreadySplit(t *testing.T) {
	// Two disconnected edges: asking for 2 communities needs no cuts.
	g, err := graph.FromEdgeList(4, [][2]graph.NodeID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	p := GirvanNewman(g, 2)
	if p.Count != 2 {
		t.Errorf("components = %d", p.Count)
	}
}
