// Package community implements community detection and modularity
// scoring for the paper's §6 future-work direction ("the presence of
// well-connected clusters of nodes can impact the transient dynamics of
// various influence propagation models ... especially important in
// networks with well-defined community structure").
//
// Two detectors are provided: asynchronous label propagation (fast, for
// large graphs) and a Girvan–Newman-style divisive splitter driven by
// edge betweenness (the method of the paper's reference [6]); both are
// scored with Newman modularity (reference [15]).
package community

import (
	"errors"
	"sort"

	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// Partition assigns each node a community label in [0, Count).
type Partition struct {
	Labels []int
	Count  int
}

// Normalize relabels communities to dense ids [0, Count) preserving
// grouping, and recomputes Count.
func Normalize(labels []int) Partition {
	remap := make(map[int]int)
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[i] = id
	}
	return Partition{Labels: out, Count: len(remap)}
}

// Sizes returns the size of each community.
func (p Partition) Sizes() []int {
	sizes := make([]int, p.Count)
	for _, l := range p.Labels {
		sizes[l]++
	}
	return sizes
}

// Modularity computes Newman's modularity Q of the partition over the
// undirected projection of g: Q = Σ_c (e_c/m - (d_c/2m)^2) with e_c the
// intra-community undirected edges, d_c the total degree inside c and m
// the undirected edge count. It returns an error if the label slice
// does not match the graph.
func Modularity(g *graph.Graph, labels []int) (float64, error) {
	if len(labels) != g.NumNodes() {
		return 0, errors.New("community: label count mismatch")
	}
	adj := undirected(g)
	m := 0
	for _, nbrs := range adj {
		m += len(nbrs)
	}
	m /= 2
	if m == 0 {
		return 0, nil
	}
	part := Normalize(labels)
	intra := make([]float64, part.Count)
	degree := make([]float64, part.Count)
	for u, nbrs := range adj {
		cu := part.Labels[u]
		degree[cu] += float64(len(nbrs))
		for _, v := range nbrs {
			if int(v) > u && part.Labels[v] == cu {
				intra[cu]++
			}
		}
	}
	q := 0.0
	fm := float64(m)
	for c := 0; c < part.Count; c++ {
		q += intra[c]/fm - (degree[c]/(2*fm))*(degree[c]/(2*fm))
	}
	return q, nil
}

// LabelPropagation detects communities by asynchronous label
// propagation on the undirected projection: every node repeatedly
// adopts the most frequent label among its neighbors (ties broken by
// smallest label) until no label changes or maxIters passes complete.
func LabelPropagation(g *graph.Graph, r *rng.RNG, maxIters int) Partition {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	adj := undirected(g)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts := make(map[int]int)
	for iter := 0; iter < maxIters; iter++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, u := range order {
			nbrs := adj[u]
			if len(nbrs) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, v := range nbrs {
				counts[labels[v]]++
			}
			best, bestCount := labels[u], 0
			keys := make([]int, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				if counts[k] > bestCount {
					best, bestCount = k, counts[k]
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return Normalize(labels)
}

// GirvanNewman splits the undirected projection into targetCommunities
// components by repeatedly removing the highest-betweenness edge. It is
// O(V*E) per removal and intended for the small graphs of the §6
// experiments. targetCommunities is clamped to [1, NumNodes].
func GirvanNewman(g *graph.Graph, targetCommunities int) Partition {
	n := g.NumNodes()
	if targetCommunities < 1 {
		targetCommunities = 1
	}
	if targetCommunities > n {
		targetCommunities = n
	}
	adj := undirected(g)
	for {
		part := components(adj)
		if part.Count >= targetCommunities {
			return part
		}
		u, v, ok := highestBetweennessEdge(adj)
		if !ok {
			return part
		}
		adj[u] = removeNeighbor(adj[u], graph.NodeID(v))
		adj[v] = removeNeighbor(adj[v], graph.NodeID(u))
	}
}

// undirected builds symmetric adjacency lists from the directed graph,
// deduplicating mutual edges.
func undirected(g *graph.Graph) [][]graph.NodeID {
	n := g.NumNodes()
	adj := make([][]graph.NodeID, n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		seen := make(map[graph.NodeID]bool)
		for _, v := range g.Friends(u) {
			seen[v] = true
		}
		for _, v := range g.Fans(u) {
			seen[v] = true
		}
		nbrs := make([]graph.NodeID, 0, len(seen))
		for v := range seen {
			nbrs = append(nbrs, v)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		adj[u] = nbrs
	}
	return adj
}

// components labels connected components of adjacency lists.
func components(adj [][]graph.NodeID) Partition {
	labels := make([]int, len(adj))
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	for start := range adj {
		if labels[start] >= 0 {
			continue
		}
		stack := []int{start}
		labels[start] = count
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if labels[v] < 0 {
					labels[v] = count
					stack = append(stack, int(v))
				}
			}
		}
		count++
	}
	return Partition{Labels: labels, Count: count}
}

// highestBetweennessEdge computes edge betweenness via Brandes'
// accumulation over BFS shortest paths and returns the edge with the
// highest score.
func highestBetweennessEdge(adj [][]graph.NodeID) (int, int, bool) {
	n := len(adj)
	type key struct{ a, b int }
	score := make(map[key]float64)
	edgeKey := func(a, b int) key {
		if a > b {
			a, b = b, a
		}
		return key{a, b}
	}
	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, vn := range adj[u] {
				v := int(vn)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, vn := range adj[w] {
				v := int(vn)
				if dist[v] == dist[w]+1 && sigma[v] > 0 {
					c := sigma[w] / sigma[v] * (1 + delta[v])
					score[edgeKey(w, v)] += c
					delta[w] += c
				}
			}
		}
	}
	bestScore := -1.0
	var best key
	keys := make([]key, 0, len(score))
	for k := range score {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		if score[k] > bestScore {
			bestScore = score[k]
			best = k
		}
	}
	if bestScore < 0 {
		return 0, 0, false
	}
	return best.a, best.b, true
}

func removeNeighbor(nbrs []graph.NodeID, v graph.NodeID) []graph.NodeID {
	out := nbrs[:0]
	for _, u := range nbrs {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}
