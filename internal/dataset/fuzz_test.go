package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadVotesCSV feeds corrupted votes files through Load to verify
// the loader returns errors instead of panicking on malformed scrapes.
func FuzzLoadVotesCSV(f *testing.F) {
	f.Add("story,voter,at,in_network\n0,1,5,1\n")
	f.Add("story,voter,at,in_network\n0,notanint,5,1\n")
	f.Add("story,voter,at,in_network\n99,1,5,1\n")
	f.Add("")
	f.Add("story,voter,at\n0,1,5\n")
	f.Add("story,voter,at,in_network\n-1,-2,-3,2\n")
	f.Fuzz(func(t *testing.T, votes string) {
		dir := t.TempDir()
		write := func(name, content string) {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write(graphFile, "from,to\n1,0\n")
		write(storiesFile, "id,title,submitter,submitted_at,promoted,promoted_at\n0,t,0,0,0,-1\n")
		write(topUsersFile, "rank,user\n1,0\n")
		write(votesFile, votes)
		ds, err := Load(dir)
		if err != nil {
			return // malformed input rejected: fine
		}
		// Accepted input must produce a well-formed dataset.
		if ds.Graph == nil {
			t.Fatal("accepted dataset without graph")
		}
		for _, s := range ds.Stories {
			for _, v := range s.Votes {
				if int(v.Voter) >= ds.Graph.NumNodes() {
					t.Fatalf("voter %d outside graph (%d nodes)", v.Voter, ds.Graph.NumNodes())
				}
			}
		}
	})
}

// FuzzLoadGraphCSV does the same for the graph file.
func FuzzLoadGraphCSV(f *testing.F) {
	f.Add("from,to\n0,1\n")
	f.Add("from,to\n-1,0\n")
	f.Add("from,to\nx,y\n")
	f.Add("from,to\n")
	f.Fuzz(func(t *testing.T, edges string) {
		dir := t.TempDir()
		write := func(name, content string) {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write(graphFile, edges)
		write(storiesFile, "id,title,submitter,submitted_at,promoted,promoted_at\n")
		write(topUsersFile, "rank,user\n")
		write(votesFile, "story,voter,at,in_network\n")
		ds, err := Load(dir)
		if err != nil {
			return
		}
		if ds.Graph == nil || ds.Graph.NumEdges() < 0 {
			t.Fatal("accepted dataset with broken graph")
		}
	})
}
