package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
)

// File names used inside a dataset directory.
const (
	graphFile    = "graph.csv"
	storiesFile  = "stories.csv"
	votesFile    = "votes.csv"
	topUsersFile = "topusers.csv"
)

// Save writes the dataset to dir as CSV files (graph edges, stories,
// votes, top users), creating dir if needed. The format matches what a
// scraper of the simulated site would collect, and Load restores an
// analyzable dataset from it.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, graphFile), []string{"from", "to"}, func(w *csv.Writer) error {
		for _, e := range d.Graph.Edges() {
			if err := w.Write([]string{itoa(int(e[0])), itoa(int(e[1]))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, storiesFile),
		[]string{"id", "title", "submitter", "submitted_at", "promoted", "promoted_at"},
		func(w *csv.Writer) error {
			for _, s := range d.Stories {
				promoted := "0"
				promotedAt := "-1"
				if s.Promoted {
					promoted = "1"
					promotedAt = itoa(int(s.PromotedAt))
				}
				err := w.Write([]string{
					itoa(int(s.ID)), s.Title, itoa(int(s.Submitter)),
					itoa(int(s.SubmittedAt)), promoted, promotedAt,
				})
				if err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, votesFile),
		[]string{"story", "voter", "at", "in_network"},
		func(w *csv.Writer) error {
			for _, s := range d.Stories {
				for _, v := range s.Votes {
					inNet := "0"
					if v.InNetwork {
						inNet = "1"
					}
					err := w.Write([]string{
						itoa(int(s.ID)), itoa(int(v.Voter)), itoa(int(v.At)), inNet,
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, topUsersFile), []string{"rank", "user"},
		func(w *csv.Writer) error {
			for i, u := range d.TopUsers {
				if err := w.Write([]string{itoa(i + 1), itoa(int(u))}); err != nil {
					return err
				}
			}
			return nil
		})
}

// Load reads a dataset directory written by Save (or by the scraper).
// The returned Dataset has Graph, Stories, TopUsers and the snapshot
// samples populated; Platform is nil because the live site state cannot
// be reconstructed from a scrape, and Config holds only zero values
// except the fields recoverable from the data.
func Load(dir string) (*Dataset, error) {
	d := &Dataset{}

	// Graph.
	b := &graph.Builder{}
	if err := readCSV(filepath.Join(dir, graphFile), 2, func(rec []string) error {
		from, err := atoi(rec[0])
		if err != nil {
			return err
		}
		to, err := atoi(rec[1])
		if err != nil {
			return err
		}
		return b.AddEdge(graph.NodeID(from), graph.NodeID(to))
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading graph: %w", err)
	}

	// Stories.
	byID := make(map[digg.StoryID]*digg.Story)
	if err := readCSV(filepath.Join(dir, storiesFile), 6, func(rec []string) error {
		id, err := atoi(rec[0])
		if err != nil {
			return err
		}
		submitter, err := atoi(rec[2])
		if err != nil {
			return err
		}
		submittedAt, err := atoi(rec[3])
		if err != nil {
			return err
		}
		promotedAt, err := atoi(rec[5])
		if err != nil {
			return err
		}
		s := &digg.Story{
			ID:          digg.StoryID(id),
			Title:       rec[1],
			Submitter:   digg.UserID(submitter),
			SubmittedAt: digg.Minutes(submittedAt),
			Promoted:    rec[4] == "1",
		}
		if s.Promoted {
			s.PromotedAt = digg.Minutes(promotedAt)
		}
		b.EnsureNodes(submitter + 1)
		d.Stories = append(d.Stories, s)
		byID[s.ID] = s
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading stories: %w", err)
	}

	// Votes.
	if err := readCSV(filepath.Join(dir, votesFile), 4, func(rec []string) error {
		id, err := atoi(rec[0])
		if err != nil {
			return err
		}
		voter, err := atoi(rec[1])
		if err != nil {
			return err
		}
		at, err := atoi(rec[2])
		if err != nil {
			return err
		}
		s, ok := byID[digg.StoryID(id)]
		if !ok {
			return fmt.Errorf("vote references unknown story %d", id)
		}
		b.EnsureNodes(voter + 1)
		s.Votes = append(s.Votes, digg.Vote{
			Voter:     digg.UserID(voter),
			At:        digg.Minutes(at),
			InNetwork: rec[3] == "1",
		})
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading votes: %w", err)
	}

	// Top users.
	if err := readCSV(filepath.Join(dir, topUsersFile), 2, func(rec []string) error {
		u, err := atoi(rec[1])
		if err != nil {
			return err
		}
		d.TopUsers = append(d.TopUsers, digg.UserID(u))
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading top users: %w", err)
	}

	d.Graph = b.Build()
	d.rankOf = make(map[digg.UserID]int, len(d.TopUsers))
	for i, u := range d.TopUsers {
		d.rankOf[u] = i + 1
	}
	// Recover snapshot samples using the latest promotion time seen as
	// the snapshot instant, matching how the generator defined them.
	var snapshot digg.Minutes
	for _, s := range d.Stories {
		if s.Promoted && s.PromotedAt > snapshot {
			snapshot = s.PromotedAt
		}
	}
	if snapshot > 0 {
		d.FrontPage = frontPageSample(d.Stories, snapshot, len(d.Stories))
		d.UpcomingAtSnapshot = upcomingSnapshot(d.Stories, snapshot)
	}
	return d, nil
}

func writeCSV(path string, header []string, body func(*csv.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := body(w); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func readCSV(path string, fields int, row func([]string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = fields
	r.ReuseRecord = true
	first := true
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if first {
			first = false
			continue // header
		}
		if err := row(rec); err != nil {
			return err
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func atoi(s string) (int, error) { return strconv.Atoi(s) }
