package dataset

import (
	"path/filepath"
	"testing"

	"diggsim/internal/cascade"
	"diggsim/internal/digg"
)

// smallDS caches one generated small dataset across tests; generation
// is deterministic so sharing is safe for read-only use.
var smallDS *Dataset

func getSmall(t *testing.T) *Dataset {
	t.Helper()
	if smallDS == nil {
		ds, err := Generate(SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallDS = ds
	}
	return smallDS
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Users = 1 },
		func(c *Config) { c.GraphM = 0 },
		func(c *Config) { c.Submissions = 0 },
		func(c *Config) { c.SubmissionWindow = 0 },
		func(c *Config) { c.SnapshotAt = 0 },
		func(c *Config) { c.InterestExponent = 0 },
		func(c *Config) { c.SubmitterZipfS = 0 },
		func(c *Config) { c.TopUserListSize = 0 },
		func(c *Config) { c.FrontPageSample = 0 },
		func(c *Config) { c.Agent.Horizon = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	ds := getSmall(t)
	cfg := ds.Config
	if len(ds.Stories) != cfg.Submissions {
		t.Fatalf("stories = %d want %d", len(ds.Stories), cfg.Submissions)
	}
	if ds.Graph.NumNodes() != cfg.Users {
		t.Errorf("graph nodes = %d", ds.Graph.NumNodes())
	}
	// Chronological submission order.
	for i := 1; i < len(ds.Stories); i++ {
		if ds.Stories[i].SubmittedAt < ds.Stories[i-1].SubmittedAt {
			t.Fatal("stories out of chronological order")
		}
	}
	// Every story has at least the submitter's vote, chronological.
	for _, s := range ds.Stories {
		if s.VoteCount() < 1 || s.Votes[0].Voter != s.Submitter {
			t.Fatalf("story %d vote structure broken", s.ID)
		}
		for i := 1; i < len(s.Votes); i++ {
			if s.Votes[i].At < s.Votes[i-1].At {
				t.Fatalf("story %d votes out of order", s.ID)
			}
		}
	}
}

func TestPromotionBoundary(t *testing.T) {
	// The paper: no front-page story under 43 votes, no upcoming story
	// over 42 (text1 experiment).
	ds := getSmall(t)
	for _, s := range ds.Stories {
		if s.Promoted && s.VoteCount() < 43 {
			t.Errorf("promoted story %d has %d votes", s.ID, s.VoteCount())
		}
		if !s.Promoted && s.VoteCount() > 42 {
			t.Errorf("upcoming story %d has %d votes", s.ID, s.VoteCount())
		}
	}
}

func TestFrontPageSample(t *testing.T) {
	ds := getSmall(t)
	cfg := ds.Config
	if len(ds.FrontPage) == 0 || len(ds.FrontPage) > cfg.FrontPageSample {
		t.Fatalf("front-page sample size = %d", len(ds.FrontPage))
	}
	for i, s := range ds.FrontPage {
		if !s.Promoted || s.PromotedAt > cfg.SnapshotAt {
			t.Errorf("sample story %d not promoted before snapshot", s.ID)
		}
		if i > 0 && s.PromotedAt < ds.FrontPage[i-1].PromotedAt {
			t.Error("front-page sample not in promotion order")
		}
	}
}

func TestUpcomingSnapshot(t *testing.T) {
	ds := getSmall(t)
	cfg := ds.Config
	if len(ds.UpcomingAtSnapshot) == 0 {
		t.Fatal("empty upcoming snapshot")
	}
	someLaterPromoted := false
	for _, s := range ds.UpcomingAtSnapshot {
		if s.SubmittedAt > cfg.SnapshotAt || s.SubmittedAt < cfg.SnapshotAt-digg.Day {
			t.Errorf("story %d outside snapshot window", s.ID)
		}
		if s.Promoted && s.PromotedAt <= cfg.SnapshotAt {
			t.Errorf("story %d was already promoted at snapshot", s.ID)
		}
		if s.Promoted {
			someLaterPromoted = true
		}
	}
	// The holdout test depends on some upcoming stories promoting after
	// the snapshot (the paper's TP/FN cases).
	if !someLaterPromoted {
		t.Error("no upcoming story promoted after the snapshot")
	}
}

func TestTopUsersList(t *testing.T) {
	ds := getSmall(t)
	cfg := ds.Config
	if len(ds.TopUsers) != cfg.TopUserListSize {
		t.Fatalf("top users = %d want %d", len(ds.TopUsers), cfg.TopUserListSize)
	}
	seen := map[digg.UserID]bool{}
	for _, u := range ds.TopUsers {
		if seen[u] {
			t.Fatal("duplicate user in top list")
		}
		seen[u] = true
	}
	for i, u := range ds.TopUsers {
		if ds.RankOf(u) != i+1 {
			t.Fatalf("RankOf(%d) = %d want %d", u, ds.RankOf(u), i+1)
		}
	}
	// A user not on the list has rank 0.
	for u := digg.UserID(0); int(u) < cfg.Users; u++ {
		if !seen[u] {
			if ds.RankOf(u) != 0 {
				t.Errorf("off-list RankOf = %d", ds.RankOf(u))
			}
			break
		}
	}
}

func TestActivitySkew(t *testing.T) {
	// The paper: top users are disproportionately active (top 3% made
	// 35% of front-page submissions). Verify strong skew.
	ds := getSmall(t)
	counts := map[digg.UserID]int{}
	promoted := 0
	for _, s := range ds.Stories {
		if s.Promoted {
			counts[s.Submitter]++
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no promoted stories")
	}
	// Share of promotions by the top 3% of *users with promotions*.
	top := 0
	topN := len(counts)*3/100 + 1
	best := make([]int, 0, len(counts))
	for _, c := range counts {
		best = append(best, c)
	}
	// selection: find the topN largest
	for i := 0; i < topN; i++ {
		maxIdx := i
		for j := i + 1; j < len(best); j++ {
			if best[j] > best[maxIdx] {
				maxIdx = j
			}
		}
		best[i], best[maxIdx] = best[maxIdx], best[i]
		top += best[i]
	}
	share := float64(top) / float64(promoted)
	if share < 0.10 {
		t.Errorf("top 3%% share = %.2f; want heavy skew", share)
	}
}

func TestInverseRelationship(t *testing.T) {
	// Fig. 4's core finding: front-page stories with mostly in-network
	// early votes end up with fewer total votes than stories with
	// mostly independent early votes.
	ds := getSmall(t)
	var inNetHeavy, inNetLight []float64
	for _, s := range ds.FrontPage {
		st := cascade.Analyze(ds.Graph, s)
		if st.InNet10 >= 7 {
			inNetHeavy = append(inNetHeavy, float64(st.FinalVotes))
		} else if st.InNet10 <= 3 {
			inNetLight = append(inNetLight, float64(st.FinalVotes))
		}
	}
	if len(inNetHeavy) < 3 || len(inNetLight) < 3 {
		t.Skipf("too few stories per band (heavy=%d light=%d)", len(inNetHeavy), len(inNetLight))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(inNetHeavy) >= mean(inNetLight) {
		t.Errorf("inverse relationship violated: heavy=%.0f light=%.0f",
			mean(inNetHeavy), mean(inNetLight))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SmallConfig()
	cfg.Submissions = 50
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stories) != len(b.Stories) {
		t.Fatal("story counts differ")
	}
	for i := range a.Stories {
		sa, sb := a.Stories[i], b.Stories[i]
		if sa.VoteCount() != sb.VoteCount() || sa.Submitter != sb.Submitter ||
			sa.Promoted != sb.Promoted {
			t.Fatalf("story %d differs between identical runs", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	cfg.Submissions = 60
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Errorf("edges: %d vs %d", got.Graph.NumEdges(), ds.Graph.NumEdges())
	}
	if len(got.Stories) != len(ds.Stories) {
		t.Fatalf("stories: %d vs %d", len(got.Stories), len(ds.Stories))
	}
	for i, s := range ds.Stories {
		l := got.Stories[i]
		if l.ID != s.ID || l.Title != s.Title || l.Submitter != s.Submitter ||
			l.SubmittedAt != s.SubmittedAt || l.Promoted != s.Promoted {
			t.Fatalf("story %d metadata mismatch: %+v vs %+v", i, l, s)
		}
		if s.Promoted && l.PromotedAt != s.PromotedAt {
			t.Fatalf("story %d promotion time mismatch", i)
		}
		if len(l.Votes) != len(s.Votes) {
			t.Fatalf("story %d votes: %d vs %d", i, len(l.Votes), len(s.Votes))
		}
		for j := range s.Votes {
			if l.Votes[j] != s.Votes[j] {
				t.Fatalf("story %d vote %d mismatch", i, j)
			}
		}
	}
	if len(got.TopUsers) != len(ds.TopUsers) {
		t.Fatalf("top users: %d vs %d", len(got.TopUsers), len(ds.TopUsers))
	}
	for i := range ds.TopUsers {
		if got.TopUsers[i] != ds.TopUsers[i] {
			t.Fatal("top user order changed")
		}
	}
	if got.RankOf(ds.TopUsers[0]) != 1 {
		t.Error("rank lookup broken after load")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("loading missing directory succeeded")
	}
}

func TestGraphModelString(t *testing.T) {
	cases := map[GraphModel]string{
		GraphPreferential: "preferential",
		GraphErdosRenyi:   "erdos-renyi",
		GraphFlat:         "flat",
		GraphModel(9):     "graphmodel(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q want %q", m, got, want)
		}
	}
}

func TestAlternativeGraphModels(t *testing.T) {
	for _, model := range []GraphModel{GraphErdosRenyi, GraphFlat} {
		cfg := SmallConfig()
		cfg.Submissions = 60
		cfg.GraphModel = model
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if ds.Graph.NumNodes() != cfg.Users {
			t.Errorf("%v: nodes = %d", model, ds.Graph.NumNodes())
		}
		// Mean degree roughly GraphM.
		mean := float64(ds.Graph.NumEdges()) / float64(cfg.Users)
		if mean < float64(cfg.GraphM)*0.5 || mean > float64(cfg.GraphM)*1.5 {
			t.Errorf("%v: mean degree %.2f far from %d", model, mean, cfg.GraphM)
		}
		// No hubs: max fan count should stay modest compared to the BA
		// substrate's thousands.
		maxFans := 0
		for u := 0; u < cfg.Users; u++ {
			if d := ds.Graph.InDegree(digg.UserID(u)); d > maxFans {
				maxFans = d
			}
		}
		if maxFans > 100 {
			t.Errorf("%v: unexpected hub with %d fans", model, maxFans)
		}
	}
}

func TestUnknownGraphModel(t *testing.T) {
	cfg := SmallConfig()
	cfg.GraphModel = GraphModel(42)
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown graph model accepted")
	}
}

func TestOfflineInNetworkMatchesStored(t *testing.T) {
	// The stored in-network flags (computed online by the platform)
	// must agree with offline cascade analysis over the whole corpus.
	ds := getSmall(t)
	checked := 0
	for _, s := range ds.Stories {
		if s.VoteCount() < 5 {
			continue
		}
		flags := cascade.InNetworkFlags(ds.Graph, cascade.Voters(s))
		for i, f := range flags {
			if f != s.Votes[i+1].InNetwork {
				t.Fatalf("story %d vote %d: offline %v != stored %v", s.ID, i+1, f, s.Votes[i+1].InNetwork)
			}
		}
		checked++
		if checked >= 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no stories checked")
	}
}
