package dataset

import (
	"testing"
	"time"

	"diggsim/internal/digg"
)

// identicalCorpora fails the test unless a and b carry bit-identical
// vote histories, promotion outcomes and samples.
func identicalCorpora(t *testing.T, label string, a, b *Dataset) {
	t.Helper()
	if len(a.Stories) != len(b.Stories) {
		t.Fatalf("%s: story counts differ: %d vs %d", label, len(a.Stories), len(b.Stories))
	}
	for i := range a.Stories {
		sa, sb := a.Stories[i], b.Stories[i]
		if sa.ID != sb.ID || sa.Title != sb.Title || sa.Submitter != sb.Submitter ||
			sa.SubmittedAt != sb.SubmittedAt || sa.Interest != sb.Interest ||
			sa.Promoted != sb.Promoted {
			t.Fatalf("%s: story %d metadata differs: %+v vs %+v", label, i, sa, sb)
		}
		if sa.Promoted && sa.PromotedAt != sb.PromotedAt {
			t.Fatalf("%s: story %d promotion time differs: %d vs %d", label, i, sa.PromotedAt, sb.PromotedAt)
		}
		if len(sa.Votes) != len(sb.Votes) {
			t.Fatalf("%s: story %d vote counts differ: %d vs %d", label, i, len(sa.Votes), len(sb.Votes))
		}
		for j := range sa.Votes {
			if sa.Votes[j] != sb.Votes[j] {
				t.Fatalf("%s: story %d vote %d differs: %+v vs %+v", label, i, j, sa.Votes[j], sb.Votes[j])
			}
		}
	}
	if len(a.TopUsers) != len(b.TopUsers) {
		t.Fatalf("%s: top-user list sizes differ", label)
	}
	for i := range a.TopUsers {
		if a.TopUsers[i] != b.TopUsers[i] {
			t.Fatalf("%s: top-user rank %d differs: %d vs %d", label, i+1, a.TopUsers[i], b.TopUsers[i])
		}
	}
	if len(a.FrontPage) != len(b.FrontPage) {
		t.Fatalf("%s: front-page sample sizes differ", label)
	}
	if len(a.UpcomingAtSnapshot) != len(b.UpcomingAtSnapshot) {
		t.Fatalf("%s: upcoming snapshot sizes differ", label)
	}
}

// TestGenerateBitIdenticalAcrossRuns is the determinism regression
// test: the same Config must yield byte-for-byte identical vote
// histories on every run.
func TestGenerateBitIdenticalAcrossRuns(t *testing.T) {
	cfg := SmallConfig()
	cfg.Submissions = 80
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalCorpora(t, "rerun", a, b)
}

// TestParallelMatchesSequential pins the API contract of the parallel
// generation path: determinism is the contract, parallelism is just
// scheduling. Every worker count must reproduce the sequential corpus
// exactly, because each story draws only from its (Seed, index)-keyed
// substream.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := SmallConfig()
	cfg.Submissions = 80
	cfg.Workers = 1
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		cfg.Workers = workers
		par, err := Generate(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		identicalCorpora(t, "workers=4/8 vs sequential", seq, par)
	}
}

// TestParallelMatchesSequentialDiversityPolicy repeats the contract
// check under the non-default promotion policy, which reads the whole
// vote history on every decision.
func TestParallelMatchesSequentialDiversityPolicy(t *testing.T) {
	cfg := SmallConfig()
	cfg.Submissions = 40
	cfg.Policy = digg.NewDiversityPromotion()
	cfg.Workers = 1
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalCorpora(t, "diversity policy", seq, par)
}

// TestGenerationWallClockGuard is a coarse performance tripwire (not a
// benchmark): SmallConfig corpus generation must finish well inside a
// bound that even slow CI hardware meets comfortably, so a gross
// regression in the event-driven scheduler fails tier-1 instead of
// silently making every experiment crawl. The bound is ~50x the
// measured time on one 2.7 GHz core.
func TestGenerationWallClockGuard(t *testing.T) {
	start := time.Now()
	if _, err := Generate(SmallConfig()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("SmallConfig generation took %v; the event-driven path has grossly regressed", elapsed)
	}
}
