// Package dataset generates the calibrated synthetic Digg corpus used
// by every experiment, substituting for the paper's June-2006 scrape
// (the original dataset is unavailable; see DESIGN.md).
//
// The generator builds a scale-free fan graph, draws submitters from a
// heavy-tailed activity distribution (the paper: the top 3% of users
// made 35% of front-page submissions), assigns each story an intrinsic
// interest, and simulates every story's lifetime with the behaviour
// model. It then takes the paper's two samples:
//
//   - a front-page sample: the most recently promoted stories as of the
//     snapshot time (the paper scraped "roughly 200 of the most
//     recently promoted stories" on June 30, 2006), and
//   - an upcoming-queue snapshot: stories in the queue at the snapshot
//     time, some of which are promoted later — exactly the population
//     the paper's §5.2 holdout test draws from.
//
// Final vote counts come from the full simulation, mirroring the
// paper's February-2008 re-crawl that fetched final counts for both
// samples.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"diggsim/internal/agent"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// Config parameterizes corpus generation. DefaultConfig returns the
// calibrated values; experiments override selectively (e.g. the
// promotion-policy ablation).
type Config struct {
	Seed uint64

	// Users is the social-graph size. The paper observed 16.6k distinct
	// voters plus the top-1020 network snapshot.
	Users int
	// GraphModel selects the fan-graph substrate (preferential
	// attachment by default; Erdős–Rényi and a flat configuration model
	// exist for the abl-graph ablation).
	GraphModel GraphModel
	// GraphM is the preferential-attachment out-degree (for the other
	// models, the mean fan count) and Reciprocity the probability a
	// watched user watches back (preferential attachment only).
	GraphM      int
	Reciprocity float64

	// Submissions is the number of stories submitted during the
	// SubmissionWindow; submit times are uniform over the window.
	Submissions      int
	SubmissionWindow digg.Minutes

	// SnapshotAt is the scrape time: front-page and upcoming samples
	// are taken as of this instant.
	SnapshotAt digg.Minutes

	// InterestExponent shapes the intrinsic-interest distribution:
	// interest = U(0,1)^InterestExponent. Values above 1 skew the
	// corpus toward uninteresting stories, as on the real site.
	InterestExponent float64

	// SubmitterZipfS is the Zipf exponent of submitter activity over
	// users ranked by fan count. 0.7 reproduces "top 3% of users made
	// 35% of the submissions".
	SubmitterZipfS float64

	// TopUserListSize is the size of the reputation snapshot (the paper
	// scraped the top-ranked 1020 users).
	TopUserListSize int
	// FrontPageSample is the size of the front-page story sample
	// (roughly 200 in the paper).
	FrontPageSample int

	// Agent is the behaviour model; Policy the promotion policy
	// (nil = classic 43-vote threshold). A non-nil Policy must be safe
	// for concurrent read-only use when Workers != 1 (the built-in
	// policies are).
	Agent  agent.Config
	Policy digg.PromotionPolicy

	// Workers is the number of story-simulation workers (0 = one per
	// available CPU). Stories are statistically independent given the
	// graph, and each draws from a substream keyed by (Seed, story
	// index), so the corpus is bit-identical for every worker count:
	// determinism is the contract, parallelism is just scheduling.
	Workers int
}

// DefaultConfig returns the calibrated generation parameters.
func DefaultConfig() Config {
	ac := agent.NewConfig()
	// A higher discovery rate than the single-story default lets
	// mid-interest stories reach the 43-vote promotion threshold
	// organically, which fills the middle of the final-vote histogram
	// (Fig. 2a) like the real front page; the lower front-page rate
	// scales final counts so that ~20% of the front-page sample stays
	// under 500 votes and ~20% exceeds 1500, the paper's bands.
	ac.QueueDiscoveryRate = 0.3
	ac.FrontPageRate = 0.5
	return Config{
		Seed:             20060630,
		Users:            20000,
		GraphM:           4,
		Reciprocity:      0.3,
		Submissions:      3000,
		SubmissionWindow: 3 * digg.Day,
		SnapshotAt:       3 * digg.Day,
		InterestExponent: 3,
		SubmitterZipfS:   0.7,
		TopUserListSize:  1020,
		FrontPageSample:  200,
		Agent:            ac,
	}
}

// GraphModel selects the social-graph generator for the corpus.
type GraphModel int

const (
	// GraphPreferential is the default scale-free fan graph
	// (heavy-tailed fan counts, like real Digg).
	GraphPreferential GraphModel = iota
	// GraphErdosRenyi gives every ordered pair an equal edge
	// probability: no hubs, no top users.
	GraphErdosRenyi
	// GraphFlat is a configuration model where every user requests the
	// same fan count: homogeneous connectivity with random wiring.
	GraphFlat
)

// String names the graph model.
func (m GraphModel) String() string {
	switch m {
	case GraphPreferential:
		return "preferential"
	case GraphErdosRenyi:
		return "erdos-renyi"
	case GraphFlat:
		return "flat"
	default:
		return fmt.Sprintf("graphmodel(%d)", int(m))
	}
}

// buildGraph constructs the configured substrate.
func buildGraph(cfg Config, r *rng.RNG) (*graph.Graph, error) {
	switch cfg.GraphModel {
	case GraphPreferential:
		return graph.PreferentialAttachment(r, cfg.Users, cfg.GraphM, cfg.Reciprocity)
	case GraphErdosRenyi:
		p := float64(cfg.GraphM) / float64(cfg.Users-1)
		return graph.ErdosRenyi(r, cfg.Users, p)
	case GraphFlat:
		degs := make([]int, cfg.Users)
		for i := range degs {
			degs[i] = cfg.GraphM
		}
		return graph.ConfigurationModel(r, degs)
	default:
		return nil, fmt.Errorf("dataset: unknown graph model %v", cfg.GraphModel)
	}
}

// SmallConfig returns a scaled-down configuration that generates in
// well under a second; tests and examples use it where full calibration
// fidelity is not needed.
func SmallConfig() Config {
	cfg := DefaultConfig()
	// Users stays large enough that high-interest stories can still
	// collect >1500 votes (the Fig. 2a upper band) before exhausting
	// the population.
	cfg.Users = 10000
	cfg.Submissions = 400
	cfg.SubmissionWindow = 2 * digg.Day
	cfg.SnapshotAt = 2 * digg.Day
	cfg.TopUserListSize = 200
	cfg.FrontPageSample = 60
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Users < 2:
		return errors.New("dataset: Users must be >= 2")
	case c.GraphM < 1:
		return errors.New("dataset: GraphM must be >= 1")
	case c.Submissions < 1:
		return errors.New("dataset: Submissions must be >= 1")
	case c.SubmissionWindow <= 0:
		return errors.New("dataset: SubmissionWindow must be > 0")
	case c.SnapshotAt <= 0:
		return errors.New("dataset: SnapshotAt must be > 0")
	case c.InterestExponent <= 0:
		return errors.New("dataset: InterestExponent must be > 0")
	case c.SubmitterZipfS <= 0:
		return errors.New("dataset: SubmitterZipfS must be > 0")
	case c.TopUserListSize < 1:
		return errors.New("dataset: TopUserListSize must be >= 1")
	case c.FrontPageSample < 1:
		return errors.New("dataset: FrontPageSample must be >= 1")
	case c.Workers < 0:
		return errors.New("dataset: Workers must be >= 0")
	}
	return c.Agent.Validate()
}

// Dataset is the generated corpus plus the two paper samples.
type Dataset struct {
	Config   Config
	Graph    *graph.Graph
	Platform *digg.Platform
	// Stories holds every submission in chronological order.
	Stories []*digg.Story
	// FrontPage is the front-page sample: the most recently promoted
	// stories as of SnapshotAt, oldest promotion first.
	FrontPage []*digg.Story
	// UpcomingAtSnapshot holds stories that sat unpromoted in the
	// upcoming queue at SnapshotAt (submitted within the preceding
	// day). Some are promoted after the snapshot.
	UpcomingAtSnapshot []*digg.Story
	// TopUsers is the reputation ranking (by promoted submissions) as
	// of the end of the simulation, at most TopUserListSize entries,
	// padded with the best-fanned remaining users like the paper's
	// top-1020 snapshot.
	TopUsers []digg.UserID
	// rankOf caches 1-based reputation ranks for RankOf.
	rankOf map[digg.UserID]int
}

// storyJob carries the pre-drawn inputs of one story simulation. All
// jobs are drawn from the master stream in story order before any
// simulation starts, so the fan-out below cannot perturb them.
type storyJob struct {
	submitter digg.UserID
	interest  float64
	at        digg.Minutes
}

// Generate builds the corpus. It is deterministic for a given Config,
// including Workers: every story is simulated on its own random
// substream keyed by (Seed, story index), so sequential and parallel
// generation produce bit-identical corpora.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	g, err := buildGraph(cfg, r)
	if err != nil {
		return nil, err
	}
	platform := digg.NewPlatform(g, cfg.Policy)
	// One draw reserved for the simulation streams, in the same master-
	// stream position the sequential simulator's Split used to occupy.
	simSeed := r.Uint64()

	// Submitters: Zipf rank over users ordered by fan count.
	byFans := graph.TopByInDegree(g, g.NumNodes())
	zipf := rng.NewZipf(r, len(byFans), cfg.SubmitterZipfS)

	// Submission times: uniform over the window, sorted so story IDs
	// are chronological like scraped data.
	times := make([]digg.Minutes, cfg.Submissions)
	for i := range times {
		times[i] = digg.Minutes(r.Intn(int(cfg.SubmissionWindow)))
	}
	sortMinutes(times)

	jobs := make([]storyJob, cfg.Submissions)
	for i := range jobs {
		jobs[i] = storyJob{
			submitter: byFans[zipf.Draw()-1],
			interest:  math.Pow(r.Float64(), cfg.InterestExponent),
			at:        times[i],
		}
	}

	stories, err := simulateStories(cfg, g, simSeed, jobs)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Config: cfg, Graph: g, Platform: platform, Stories: stories}
	for _, st := range stories {
		// Installed stories arrive compacted: live voter/audience state
		// is never materialized for them, bounding generation memory.
		if err := platform.InstallStory(st); err != nil {
			return nil, err
		}
	}

	ds.FrontPage = frontPageSample(ds.Stories, cfg.SnapshotAt, cfg.FrontPageSample)
	ds.UpcomingAtSnapshot = upcomingSnapshot(ds.Stories, cfg.SnapshotAt)
	ds.TopUsers = topUserList(platform, g, cfg.TopUserListSize)
	ds.rankOf = make(map[digg.UserID]int, len(ds.TopUsers))
	for i, u := range ds.TopUsers {
		ds.rankOf[u] = i + 1
	}
	return ds, nil
}

// RankOf returns u's 1-based position in the top-user list, or 0 if u
// is not on it.
func (d *Dataset) RankOf(u digg.UserID) int { return d.rankOf[u] }

// Assemble builds an analyzable Dataset from externally collected parts
// (e.g. a scrape of a running server). The snapshot samples are
// recovered using the latest observed promotion time as the snapshot
// instant; Platform is left nil because live site state cannot be
// reconstructed from a crawl.
func Assemble(g *graph.Graph, stories []*digg.Story, topUsers []digg.UserID) *Dataset {
	d := &Dataset{Graph: g, Stories: stories, TopUsers: topUsers}
	d.rankOf = make(map[digg.UserID]int, len(topUsers))
	for i, u := range topUsers {
		d.rankOf[u] = i + 1
	}
	var snapshot digg.Minutes
	for _, s := range stories {
		if s.Promoted && s.PromotedAt > snapshot {
			snapshot = s.PromotedAt
		}
	}
	if snapshot > 0 {
		d.FrontPage = frontPageSample(stories, snapshot, len(stories))
		d.UpcomingAtSnapshot = upcomingSnapshot(stories, snapshot)
	}
	return d
}

// FromPlatform snapshots a (possibly live) platform into an analyzable
// Dataset, taking the paper's two samples as of snapshotAt: the
// front-page sample is every story promoted by then and the upcoming
// sample is the queue population at that instant. The caller must hold
// whatever lock excludes platform mutation for the duration of the
// call; the returned dataset copies the story list so later platform
// submissions do not perturb it (individual stories are shared — a
// still-running service can append votes to them).
func FromPlatform(p digg.Store, snapshotAt digg.Minutes, topUserListSize int) *Dataset {
	stories := append([]*digg.Story(nil), p.Stories()...)
	d := &Dataset{Graph: p.SocialGraph(), Stories: stories}
	// Analysis code that needs the concrete platform gets it when the
	// store is the canonical in-memory one, or a decorator (the durable
	// store) that can unwrap to it.
	d.Platform, _ = p.(*digg.Platform)
	if u, ok := p.(interface{ Unwrap() *digg.Platform }); d.Platform == nil && ok {
		d.Platform = u.Unwrap()
	}
	d.FrontPage = frontPageSample(stories, snapshotAt, len(stories))
	d.UpcomingAtSnapshot = upcomingSnapshot(stories, snapshotAt)
	d.TopUsers = topUserList(p, p.SocialGraph(), topUserListSize)
	d.rankOf = make(map[digg.UserID]int, len(d.TopUsers))
	for i, u := range d.TopUsers {
		d.rankOf[u] = i + 1
	}
	return d
}

// frontPageSample returns the n stories most recently promoted at or
// before t, in promotion order (oldest first).
func frontPageSample(stories []*digg.Story, t digg.Minutes, n int) []*digg.Story {
	var promoted []*digg.Story
	for _, s := range stories {
		if s.Promoted && s.PromotedAt <= t {
			promoted = append(promoted, s)
		}
	}
	sortByPromotion(promoted)
	if len(promoted) > n {
		promoted = promoted[len(promoted)-n:]
	}
	return promoted
}

// upcomingSnapshot returns stories that were in the upcoming queue at
// time t: submitted within the preceding day, not promoted by t.
func upcomingSnapshot(stories []*digg.Story, t digg.Minutes) []*digg.Story {
	var out []*digg.Story
	for _, s := range stories {
		if s.SubmittedAt > t || s.SubmittedAt < t-digg.Day {
			continue
		}
		if s.Promoted && s.PromotedAt <= t {
			continue
		}
		out = append(out, s)
	}
	return out
}

// topUserList ranks users by promoted submissions and pads the list to
// size with the most-fanned users not already present.
func topUserList(p digg.Store, g *graph.Graph, size int) []digg.UserID {
	top := p.TopUsers(size)
	if len(top) >= size {
		return top[:size]
	}
	seen := make(map[digg.UserID]bool, size)
	for _, u := range top {
		seen[u] = true
	}
	for _, u := range graph.TopByInDegree(g, g.NumNodes()) {
		if len(top) >= size {
			break
		}
		if !seen[u] {
			top = append(top, u)
			seen[u] = true
		}
	}
	return top
}

func sortMinutes(ts []digg.Minutes) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

func sortByPromotion(ss []*digg.Story) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].PromotedAt != ss[j].PromotedAt {
			return ss[i].PromotedAt < ss[j].PromotedAt
		}
		return ss[i].ID < ss[j].ID
	})
}
