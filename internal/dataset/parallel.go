package dataset

// parallel.go fans story simulation out across a worker pool. Stories
// are statistically independent given the graph (the promotion policy
// sees only the story it judges), and every story draws exclusively
// from a substream keyed by (seed, story index), so scheduling order
// cannot leak into the corpus: workers=1 and workers=N produce
// bit-identical vote histories. Each worker owns one agent.Runner,
// whose scratch buffers (timing wheel, epoch-stamped voter/audience
// sets) are reused across all stories the worker simulates.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"diggsim/internal/agent"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

// simulateStories runs every job through an agent.Runner and returns
// the finished stories indexed like jobs. cfg.Workers selects the pool
// size; 0 uses one worker per available CPU.
func simulateStories(cfg Config, g *graph.Graph, simSeed uint64, jobs []storyJob) ([]*digg.Story, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	stories := make([]*digg.Story, len(jobs))
	runJob := func(rn *agent.Runner, i int) error {
		job := jobs[i]
		st, err := rn.Run(
			rng.Substream(simSeed, uint64(i)),
			digg.StoryID(i), job.submitter,
			fmt.Sprintf("story-%04d", i), job.interest, job.at,
		)
		if err != nil {
			return fmt.Errorf("dataset: story %d: %w", i, err)
		}
		stories[i] = st
		return nil
	}

	if workers <= 1 {
		rn, err := agent.NewRunner(g, cfg.Agent, cfg.Policy)
		if err != nil {
			return nil, err
		}
		for i := range jobs {
			if err := runJob(rn, i); err != nil {
				return nil, err
			}
		}
		return stories, nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		rn, err := agent.NewRunner(g, cfg.Agent, cfg.Policy)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() {
					return
				}
				if err := runJob(rn, i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return stories, nil
}
