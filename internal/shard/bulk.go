package shard

// bulk.go is where the multi-core write throughput lives: the Batcher
// capability fans one burst's durability cost out to one WAL append +
// fsync per shard (committed concurrently), and the BulkWriter
// capability additionally applies the burst's commands concurrently,
// one goroutine per shard with work.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
)

// BeginBatch opens a batch on every durable shard. In-memory shards
// need no bracketing.
func (s *Store) BeginBatch() {
	for _, ds := range s.stores {
		if ds != nil {
			ds.BeginBatch()
		}
	}
}

// EndBatch commits every shard's staged batch concurrently — the
// fsyncs overlap — and returns the first error. A serial caller (the
// live service's per-tick bracket) thus pays roughly one fsync of
// latency per tick no matter how many shards its writes landed on.
func (s *Store) EndBatch() error {
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for i, ds := range s.stores {
		if ds == nil {
			continue
		}
		wg.Add(1)
		go func(i int, ds *durable.Store) {
			defer wg.Done()
			errs[i] = ds.EndBatch()
		}(i, ds)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// promo is a promotion observed while applying a bulk burst.
type promo struct {
	id digg.StoryID
	at digg.Minutes
}

// DiggMany applies a burst of votes, split into per-shard sub-batches
// applied concurrently: each shard's goroutine brackets its sub-batch
// in the shard's own WAL batch, so the burst costs one WAL append and
// one fsync per shard, all overlapped. Outcomes land at the index of
// their op. Promotions triggered anywhere in the burst are appended
// to the merged promotion order in (PromotedAt, ID) order, which is
// deterministic and matches what recovery's k-way merge rebuilds.
func (s *Store) DiggMany(ops []digg.DiggOp, out []digg.DiggOutcome) error {
	if len(out) != len(ops) {
		panic(fmt.Sprintf("shard: DiggMany out len %d, ops len %d", len(out), len(ops)))
	}
	perShard := s.partitionDiggs(ops, out)
	promos := make([][]promo, s.n)
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for sh, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			applyStart := time.Now()
			shard := s.shards[sh]
			if ds := s.stores[sh]; ds != nil {
				ds.BeginBatch()
			}
			applied := uint64(0)
			for _, i := range idxs {
				op := ops[i]
				res, err := shard.Digg(op.Story, op.User, op.At)
				out[i] = digg.DiggOutcome{Result: res, Err: err}
				if err != nil {
					continue
				}
				applied++
				if res.Promoted {
					promos[sh] = append(promos[sh], promo{op.Story, s.stories[op.Story].PromotedAt})
				}
			}
			s.stats[sh].writes.Add(applied)
			if ds := s.stores[sh]; ds != nil {
				errs[sh] = ds.EndBatch()
			}
			s.applyHist[sh].Observe(time.Since(applyStart))
		}(sh, idxs)
	}
	wg.Wait()
	mergeStart := time.Now()
	s.mergePromotions(promos)
	histMerge.Observe(time.Since(mergeStart))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// partitionDiggs groups op indices by owning shard, rejecting unknown
// story IDs up front (writing their outcomes) so goroutines only see
// routable work.
func (s *Store) partitionDiggs(ops []digg.DiggOp, out []digg.DiggOutcome) [][]int {
	perShard := make([][]int, s.n)
	for i, op := range ops {
		if op.Story < 0 || int(op.Story) >= len(s.stories) {
			out[i] = digg.DiggOutcome{Err: fmt.Errorf("%w %d", digg.ErrNoStory, op.Story)}
			continue
		}
		sh := s.shardOf(op.Story)
		perShard[sh] = append(perShard[sh], i)
	}
	return perShard
}

// mergePromotions folds per-shard promotion lists into the merged
// order, sorted by (PromotedAt, ID). Each shard's list is already in
// that shard's apply order; the global sort makes the merged order
// independent of goroutine scheduling.
func (s *Store) mergePromotions(promos [][]promo) {
	var all []promo
	for _, ps := range promos {
		all = append(all, ps...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].id < all[j].id
	})
	for _, p := range all {
		s.promoted = append(s.promoted, p.id)
		s.promotedBySubmitter[s.stories[p.id].Submitter]++
	}
	s.invalidateRanks()
}

// SubmitMany applies a burst of submissions. Global story IDs are a
// single dense sequence, so the router pre-validates each op (the
// only per-op rejection Submit can issue is ErrUnknownUser), assigns
// the next IDs to the valid ops in order, and routes each to the
// shard owning its ID; per-shard sub-batches then apply concurrently
// and necessarily mint exactly the assigned IDs, because each shard
// receives its ops in global-sequence order.
func (s *Store) SubmitMany(ops []digg.SubmitOp, out []digg.SubmitOutcome) error {
	if len(out) != len(ops) {
		panic(fmt.Sprintf("shard: SubmitMany out len %d, ops len %d", len(out), len(ops)))
	}
	perShard := make([][]int, s.n)
	base := digg.StoryID(len(s.stories))
	assigned := 0
	ids := make([]digg.StoryID, len(ops))
	for i, op := range ops {
		if op.User < 0 || int(op.User) >= s.graph.NumNodes() {
			out[i] = digg.SubmitOutcome{Err: digg.ErrUnknownUser}
			ids[i] = -1
			continue
		}
		id := base + digg.StoryID(assigned)
		assigned++
		ids[i] = id
		sh := s.shardOf(id)
		perShard[sh] = append(perShard[sh], i)
	}
	if assigned == 0 {
		return nil
	}
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for sh, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			applyStart := time.Now()
			shard := s.shards[sh]
			if ds := s.stores[sh]; ds != nil {
				ds.BeginBatch()
			}
			for _, i := range idxs {
				op := ops[i]
				st, err := shard.Submit(op.User, op.Title, op.Interest, op.At)
				out[i] = digg.SubmitOutcome{Story: st, Err: err}
			}
			s.stats[sh].writes.Add(uint64(len(idxs)))
			if ds := s.stores[sh]; ds != nil {
				errs[sh] = ds.EndBatch()
			}
			s.applyHist[sh].Observe(time.Since(applyStart))
		}(sh, idxs)
	}
	wg.Wait()
	// Extend the merged sequence with the minted stories at their
	// assigned IDs.
	mergeStart := time.Now()
	s.stories = append(s.stories, make([]*digg.Story, assigned)...)
	for i, id := range ids {
		if id < 0 {
			continue
		}
		o := out[i]
		if o.Err != nil || o.Story == nil || o.Story.ID != id {
			// Unreachable: users were pre-validated and each shard
			// mints its interleaved IDs in the routed order. Divergence
			// here means the merged sequence can no longer be trusted.
			panic(fmt.Sprintf("shard: SubmitMany op %d expected story %d, got %+v", i, id, o))
		}
		s.stories[id] = o.Story
	}
	histMerge.Observe(time.Since(mergeStart))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
