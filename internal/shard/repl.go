package shard

// repl.go is the sharded store's replication surface. A sharded
// follower receives one independent WAL stream per shard; each stream
// applies into its shard's durable store (identical records at
// identical LSNs — see durable's repl.go), and the merged read views
// are then re-folded by AbsorbReplicated under the same write lock.
//
// The folding problem is the same one the bulk write path and crash
// recovery already solve: per-shard state advances independently, but
// the merged story sequence must stay dense (index == global ID) and
// the merged promotion order append-only. The answer is also the same:
// the merged views extend only to the dense prefix (the first global
// ID no shard holds yet), and promotions are released in (PromotedAt,
// ID) order once their story enters the prefix — promotions of stories
// still beyond it park in a pending list. At quiescence the follower's
// promoted set and every story's bytes match the primary's; within a
// catch-up window the follower's views are simply a shorter prefix.

import (
	"fmt"
	"path/filepath"
	"sort"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/wal"
)

// ShardDirPath returns shard i's data directory under a sharded
// store's root — the directory a replication bootstrap seeds before
// OpenFollower recovers the set.
func ShardDirPath(dir string, i int) string {
	return filepath.Join(dir, shardDirName(i))
}

// pendingPromo is a promotion observed in a shard's replicated apply
// whose story has not yet entered the merged dense prefix.
type pendingPromo struct {
	id digg.StoryID
	at digg.Minutes
}

// DurableShard returns shard i's durable store (nil for an in-memory
// store). The replication source serves each shard's WAL directory and
// head position through it.
func (s *Store) DurableShard(i int) *durable.Store { return s.stores[i] }

// ShardAppliedLSN returns shard i's WAL position — where its
// replication stream resumes from. Zero for an in-memory store.
func (s *Store) ShardAppliedLSN(i int) uint64 {
	if s.stores[i] == nil {
		return 0
	}
	return s.stores[i].AppliedLSN()
}

// OpenFollower recovers a sharded store for replication catch-up. It
// differs from Open in one decision: stories beyond the merged dense
// prefix are NOT trimmed. On a crashed primary those trailing records
// belong to unacknowledged writes; on a follower they belong to
// acknowledged primary writes whose sibling-shard records simply have
// not streamed in yet, and trimming them would checkpoint them away at
// LSNs the stream will never resend. The merged views stop at the
// dense prefix; AbsorbReplicated extends them as the streams catch up.
func OpenFollower(dir string, opts durable.Options) (*Store, error) {
	dirs, err := ShardDirs(dir)
	if err != nil {
		return nil, err
	}
	n := len(dirs)
	stores := make([]*durable.Store, n)
	for i, d := range dirs {
		ds, err := durable.Open(d, opts)
		if err != nil {
			closeShards(stores[:i])
			return nil, fmt.Errorf("shard: opening follower shard %d: %w", i, err)
		}
		stores[i] = ds
		if i == 0 {
			opts.Graph = ds.SocialGraph()
		}
		if off, step := ds.Unwrap().IDScheme(); off != digg.StoryID(i) || step != digg.StoryID(n) {
			closeShards(stores[:i+1])
			return nil, fmt.Errorf("shard: shard %d recovered with ID scheme %d/%d, want %d/%d", i, off, step, i, n)
		}
	}

	s := New(stores[0].SocialGraph(), opts.Policy, n)
	for i, ds := range stores {
		s.stores[i] = ds
		s.shards[i] = ds
		s.plats[i] = ds.Unwrap()
		s.stats[i].replayed = uint64(ds.Recovery().Replayed)
	}
	s.dir = dir

	prefix := s.densePrefix()
	s.stories = make([]*digg.Story, prefix)
	for k := 0; k < prefix; k++ {
		s.stories[k] = s.plats[k%n].Stories()[k/n]
	}
	// Partition the shards' promotion orders: stories inside the prefix
	// are released now via the same deterministic (PromotedAt, ID)
	// merge recovery uses; the rest wait in the pending list.
	var all []pendingPromo
	for i, p := range s.plats {
		ids := p.PromotedIDs()
		for _, id := range ids {
			all = append(all, pendingPromo{id: id, at: s.promotedAtLocal(id)})
		}
		s.replSeen[i] = len(ids)
	}
	sortPromos(all)
	for _, pp := range all {
		if int(pp.id) < prefix {
			s.recordPromotion(pp.id)
		} else {
			s.replPending = append(s.replPending, pp)
		}
	}
	s.rec = RecoveryInfo{Shards: recoveries(stores), Generation: s.Generation()}
	return s, nil
}

// promotedAtLocal reads a story's promotion time from its owning
// shard's platform, which works whether or not the story is in the
// merged sequence yet.
func (s *Store) promotedAtLocal(id digg.StoryID) digg.Minutes {
	return s.plats[int(id)%s.n].Stories()[int(id)/s.n].PromotedAt
}

func sortPromos(pp []pendingPromo) {
	sort.Slice(pp, func(i, j int) bool {
		if pp[i].at != pp[j].at {
			return pp[i].at < pp[j].at
		}
		return pp[i].id < pp[j].id
	})
}

// ApplyReplicated appends and applies a contiguous run of replicated
// records to one shard (see durable.Store.ApplyReplicated). It touches
// no merged view — call AbsorbReplicated afterwards, under the same
// write lock hold, to fold the advance into the read surface. Requires
// the caller's write synchronization.
func (s *Store) ApplyReplicated(shard int, lsn uint64, entries []wal.Entry) error {
	if shard < 0 || shard >= s.n {
		return fmt.Errorf("shard: no shard %d (have %d)", shard, s.n)
	}
	ds := s.stores[shard]
	if ds == nil {
		return fmt.Errorf("shard: shard %d is not durable; cannot apply a replication stream", shard)
	}
	if err := ds.ApplyReplicated(lsn, entries); err != nil {
		return err
	}
	s.stats[shard].writes.Add(uint64(len(entries)))
	return nil
}

// AbsorbReplicated folds replicated per-shard advances into the merged
// read views: the story sequence extends to the new dense prefix, and
// pending promotions whose stories entered it are released in
// (PromotedAt, ID) order — the ordering rule the bulk path applies to
// every batch and recovery applies to every restart. Requires the
// caller's write synchronization.
func (s *Store) AbsorbReplicated() {
	prefix := s.densePrefix()
	for id := len(s.stories); id < prefix; id++ {
		s.stories = append(s.stories, s.plats[id%s.n].Stories()[id/s.n])
	}
	for i, p := range s.plats {
		ids := p.PromotedIDs()
		for _, id := range ids[s.replSeen[i]:] {
			s.replPending = append(s.replPending, pendingPromo{id: id, at: s.promotedAtLocal(id)})
		}
		s.replSeen[i] = len(ids)
	}
	if len(s.replPending) == 0 {
		return
	}
	var ready []pendingPromo
	rest := s.replPending[:0]
	for _, pp := range s.replPending {
		if int(pp.id) < prefix {
			ready = append(ready, pp)
		} else {
			rest = append(rest, pp)
		}
	}
	s.replPending = rest
	if len(ready) == 0 {
		return
	}
	sortPromos(ready)
	for _, pp := range ready {
		s.recordPromotion(pp.id)
	}
}

// PromoteToPrimary converts a follower store into a writable primary.
// Shard tails beyond the merged dense prefix — records whose sibling-
// shard companions never arrived before the old primary died — are
// trimmed and checkpointed away, exactly as crash recovery treats
// unacknowledged bursts; the returned count reports how many stories
// that dropped. The caller must have stopped the replication tailers
// first and must hold the write lock.
func (s *Store) PromoteToPrimary() (trimmed int, err error) {
	s.AbsorbReplicated()
	prefix := len(s.stories)
	for i := 0; i < s.n; i++ {
		keep := ownedBelow(prefix, i, s.n)
		if dropped := s.plats[i].TrimStories(keep); dropped > 0 {
			trimmed += dropped
			if s.stores[i] != nil {
				if err := s.stores[i].Checkpoint(); err != nil {
					return trimmed, fmt.Errorf("shard: checkpointing shard %d after promotion trim: %w", i, err)
				}
			}
		}
		s.replSeen[i] = len(s.plats[i].PromotedIDs())
	}
	s.replPending = s.replPending[:0]
	return trimmed, nil
}
