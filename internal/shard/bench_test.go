package shard

import (
	"fmt"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/wal"
)

// benchVotersPerStory bounds how many benchmark votes land on one
// story (a user votes a story once).
const benchVotersPerStory = 2000

// BenchmarkShardedBatchDigg is the sharding acceptance benchmark:
// bursts of 1000 votes applied through DiggMany against durable
// sharded stores with 1 and 4 shards. Each burst spans consecutive
// story IDs, so with 4 shards it splits across all four sub-batches
// and the per-shard WAL appends, fsyncs, and vote application all
// overlap. The acceptance bar is >= 3x votes/sec at 4 shards vs 1
// shard on a >= 4-core runner (one fsync's latency instead of four,
// one core's worth of vote application instead of four); on fewer
// cores the ratio degrades toward the fsync-overlap win alone.
func BenchmarkShardedBatchDigg(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShardedBatchDigg(b, n)
		})
	}
}

func benchShardedBatchDigg(b *testing.B, n int) {
	const batch = 1000
	g, err := graph.FromEdgeList(benchVotersPerStory+1, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		b.Fatal(err)
	}
	src := digg.NewPlatform(g, digg.NeverPromote{})
	opts := durable.Options{
		Policy:          digg.NeverPromote{},
		Sync:            wal.SyncInterval,
		CheckpointEvery: -1, // measure the log path, not checkpoint stalls
	}
	store, err := Create(b.TempDir(), src, n, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()

	// Stories are submitted through the sharded store itself (post-
	// split installs are compacted and reject votes), enough that no
	// story exceeds its distinct-voter budget.
	votes := b.N * batch
	nStories := votes/benchVotersPerStory + n
	subs := make([]digg.SubmitOp, nStories)
	for i := range subs {
		subs[i] = digg.SubmitOp{User: 0, Title: "bench", Interest: 0.5, At: digg.Minutes(i)}
	}
	subOut := make([]digg.SubmitOutcome, len(subs))
	if err := store.SubmitMany(subs, subOut); err != nil {
		b.Fatal(err)
	}

	ops := make([]digg.DiggOp, batch)
	out := make([]digg.DiggOutcome, batch)
	vote := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range ops {
			ops[k] = digg.DiggOp{
				Story: digg.StoryID(vote / benchVotersPerStory),
				User:  digg.UserID(1 + vote%benchVotersPerStory),
				At:    digg.Minutes(1000 + vote),
			}
			vote++
		}
		if err := store.DiggMany(ops, out); err != nil {
			b.Fatal(err)
		}
		for k := range out {
			if out[k].Err != nil {
				b.Fatalf("vote %d rejected: %v", k, out[k].Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "votes/sec")
}
