package shard

import (
	"os"
	"path/filepath"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/rng"
	"diggsim/internal/wal"
)

func testOpts() durable.Options {
	return durable.Options{Policy: testPolicy(), Sync: wal.SyncAlways, CheckpointEvery: -1}
}

// newSourcePlatform builds a deterministic corpus-like platform; two
// calls with the same seed produce observably identical platforms, so
// a durable sharded store and an in-memory reference can be grown from
// "the same" source without sharing story objects.
func newSourcePlatform(t testing.TB, seed uint64) *digg.Platform {
	t.Helper()
	p := digg.NewPlatform(testGraph(t), testPolicy())
	r := rng.New(seed)
	for i := 0; i < 12; i++ {
		st, err := p.Submit(digg.UserID(r.Intn(400)), "seed-story", 0.4, digg.Minutes(i*5))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 2+r.Intn(6); v++ {
			_, _ = p.Digg(st.ID, digg.UserID(r.Intn(400)), digg.Minutes(i*5+v+1))
		}
	}
	return p
}

func TestShardedCleanShutdownReplaysZero(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, newSourcePlatform(t, 41), 3, []byte(`{"seed":41}`), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FromPlatform(newSourcePlatform(t, 41), 3)
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 42, 200)
	mutate(t, ref, 42, 200)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if len(rec.Shards) != 3 || rec.Trimmed != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	for i, r := range rec.Shards {
		if r.Replayed != 0 {
			t.Fatalf("shard %d replayed %d records after clean shutdown", i, r.Replayed)
		}
	}
	compareStores(t, ref, s2)
	if g := []byte(`{"seed":41}`); string(s2.Genesis()) != string(g) {
		t.Fatalf("genesis: %q", s2.Genesis())
	}
	if s2.ShardCount() != 3 || s2.Dir() != dir {
		t.Fatalf("shape: %d shards, dir %q", s2.ShardCount(), s2.Dir())
	}
}

func TestShardedHardStopReplaysTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, newSourcePlatform(t, 51), 4, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FromPlatform(newSourcePlatform(t, 51), 4)
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 52, 250)
	mutate(t, ref, 52, 250)
	// Hard stop: no checkpoint, no close; SyncAlways means every
	// acknowledged record is on disk.

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Trimmed != 0 {
		t.Fatalf("nothing was torn, yet %d stories trimmed", rec.Trimmed)
	}
	replayed := 0
	for _, r := range rec.Shards {
		replayed += r.Replayed
	}
	if replayed == 0 {
		t.Fatal("hard stop should leave WAL tails to replay")
	}
	compareStores(t, ref, s2)
	stats := s2.Stats()
	for i, r := range rec.Shards {
		if stats[i].Replayed != uint64(r.Replayed) {
			t.Fatalf("shard %d stat replayed %d, recovery %d", i, stats[i].Replayed, r.Replayed)
		}
	}
}

// TestPartialTornShardTails tears the WAL tail of one shard out of
// three, losing that shard's last acknowledged submission. Recovery
// must truncate the torn shard, then trim every OTHER shard's stories
// past the first hole in the global ID sequence — a cross-shard
// consistency cut — and still serve a dense, internally consistent
// prefix of the pre-crash state.
func TestPartialTornShardTails(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	s, err := Create(dir, newSourcePlatform(t, 61), n, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FromPlatform(newSourcePlatform(t, 61), n)
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, s, 62, 150)
	mutate(t, ref, 62, 150)
	// Tail of pure submissions so the torn record is a submission and
	// the global sequence necessarily holes at its ID.
	base := s.NumStories()
	for i := 0; i < 7; i++ {
		at := digg.Minutes(5000 + i)
		if _, err := s.Submit(digg.UserID(i), "tail", 0.5, at); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Submit(digg.UserID(i), "tail", 0.5, at); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the last record of the shard owning the 6th tail story.
	tornShard := (base + 5) % n
	segs, err := wal.ListSegments(filepath.Join(dir, shardDirName(tornShard)))
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(last.Path, last.Size-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if !rec.Shards[tornShard].TailTruncated {
		t.Fatalf("shard %d torn tail not reported: %+v", tornShard, rec)
	}
	// The torn submission holes the sequence at base+5; base+6 (owned
	// by another shard) survives its own WAL but must be trimmed.
	wantStories := base + 5
	if s2.NumStories() != wantStories {
		t.Fatalf("recovered %d stories, want %d", s2.NumStories(), wantStories)
	}
	if rec.Trimmed != 1 {
		t.Fatalf("trimmed %d stories, want 1 (the orphaned post-hole story)", rec.Trimmed)
	}
	// Everything below the cut is intact, including vote history.
	for i := 0; i < wantStories; i++ {
		id := digg.StoryID(i)
		want, got := mustStory(t, ref, id), mustStory(t, s2, id)
		if want.ID != got.ID || want.Title != got.Title || len(want.Votes) != len(got.Votes) {
			t.Fatalf("story %d differs after partial-torn recovery:\n got %+v\nwant %+v", i, got, want)
		}
	}
	for _, id := range s2.PromotedIDs() {
		if int(id) >= wantStories {
			t.Fatalf("promotion order references trimmed story %d", id)
		}
	}
	// The cut shard was checkpointed at trim time: a second recovery is
	// clean — nothing new trimmed, same state.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec3 := s3.Recovery(); rec3.Trimmed != 0 {
		t.Fatalf("second recovery trimmed %d more stories", rec3.Trimmed)
	}
	compareStores(t, s2, s3)

	// The recovered store accepts new writes: the next submission takes
	// the first rebuilt global ID.
	st, err := s3.Submit(1, "after-recovery", 0.5, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != digg.StoryID(wantStories) {
		t.Fatalf("post-recovery submission minted id %d, want %d", st.ID, wantStories)
	}
}

func TestOpenRejectsGappyShardDirs(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, newSourcePlatform(t, 71), 2, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, shardDirName(1)), filepath.Join(dir, shardDirName(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("gappy shard layout accepted")
	}
}
