package shard

import (
	"reflect"
	"testing"

	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func testPolicy() digg.PromotionPolicy {
	return &digg.ClassicPromotion{VoteThreshold: 5, Window: digg.Day}
}

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.PreferentialAttachment(rng.New(11), 400, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mutate drives n mixed commands through a store: submissions, votes
// (including deliberate duplicates), and occasional compactions.
func mutate(t testing.TB, s digg.Store, seed uint64, n int) {
	t.Helper()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1:
			if _, err := s.Submit(digg.UserID(r.Intn(400)), "story", 0.6, digg.Minutes(100+i)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		case 2:
			if err := s.CompactStory(digg.StoryID(r.Intn(s.NumStories()))); err != nil {
				t.Fatalf("compact: %v", err)
			}
		default:
			_, _ = s.Digg(digg.StoryID(r.Intn(s.NumStories())), digg.UserID(r.Intn(400)), digg.Minutes(100+i))
		}
	}
}

func mustStory(t testing.TB, s digg.Store, id digg.StoryID) *digg.Story {
	t.Helper()
	st, err := s.Story(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStores asserts two stores are observably identical across
// the digg.Store query surface (generation excluded: composite
// generations count different histories than a source platform's).
func compareStores(t testing.TB, want, got digg.Store) {
	t.Helper()
	compareStoresOpt(t, want, got, true)
}

// compareViews is compareStores minus per-story version counters:
// FromPlatform re-installs stories, which resets their version
// counters exactly like corpus installation does on a single
// platform, so versions only agree between identical command
// histories.
func compareViews(t testing.TB, want, got digg.Store) {
	t.Helper()
	compareStoresOpt(t, want, got, false)
}

func compareStoresOpt(t testing.TB, want, got digg.Store, versions bool) {
	t.Helper()
	if want.NumStories() != got.NumStories() {
		t.Fatalf("stories: got %d, want %d", got.NumStories(), want.NumStories())
	}
	for i := 0; i < want.NumStories(); i++ {
		id := digg.StoryID(i)
		if !reflect.DeepEqual(mustStory(t, want, id), mustStory(t, got, id)) {
			t.Fatalf("story %d differs:\n got %+v\nwant %+v", i, mustStory(t, got, id), mustStory(t, want, id))
		}
		if versions && want.StoryVersion(id) != got.StoryVersion(id) {
			t.Fatalf("story %d version: got %d, want %d", i, got.StoryVersion(id), want.StoryVersion(id))
		}
	}
	if !reflect.DeepEqual(want.PromotedIDs(), got.PromotedIDs()) {
		t.Fatalf("promotion order differs: got %v, want %v", got.PromotedIDs(), want.PromotedIDs())
	}
	wantFP, gotFP := want.FrontPage(0), got.FrontPage(0)
	if len(wantFP) != len(gotFP) {
		t.Fatalf("front page length: got %d, want %d", len(gotFP), len(wantFP))
	}
	for i := range wantFP {
		if wantFP[i].ID != gotFP[i].ID {
			t.Fatalf("front page entry %d: got %d, want %d", i, gotFP[i].ID, wantFP[i].ID)
		}
	}
	if !reflect.DeepEqual(want.TopUsers(100), got.TopUsers(100)) {
		t.Fatal("top users differ")
	}
	if !reflect.DeepEqual(want.Ranks(), got.Ranks()) {
		t.Fatal("ranks differ")
	}
	if !reflect.DeepEqual(want.Upcoming(10_000, 0), got.Upcoming(10_000, 0)) {
		t.Fatal("upcoming queue differs")
	}
}

// TestShardedMatchesSingle drives the identical command sequence
// through a single platform and a 4-way sharded store: every query
// must agree, including the composite generation (each applied
// command increments exactly one shard).
func TestShardedMatchesSingle(t *testing.T) {
	g := testGraph(t)
	single := digg.NewPlatform(g, testPolicy())
	sharded := New(g, testPolicy(), 4)

	// Seed both with submissions so votes have targets.
	for i := 0; i < 10; i++ {
		if _, err := single.Submit(digg.UserID(i), "seed", 0.5, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(digg.UserID(i), "seed", 0.5, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
	}
	mutate(t, single, 7, 400)
	mutate(t, sharded, 7, 400)

	compareStores(t, single, sharded)
	if single.Generation() != sharded.Generation() {
		t.Fatalf("generation: sharded %d, single %d", sharded.Generation(), single.Generation())
	}
	gens := sharded.ShardGenerations(nil)
	if len(gens) != 4 {
		t.Fatalf("shard generations: %v", gens)
	}
	var sum uint64
	for _, gg := range gens {
		sum += gg
	}
	if sum != sharded.Generation() {
		t.Fatalf("generation %d != shard sum %d", sharded.Generation(), sum)
	}
}

// TestFromPlatformPreservesViews splits a populated platform and
// checks serving output is unchanged by the split.
func TestFromPlatformPreservesViews(t *testing.T) {
	g := testGraph(t)
	p := digg.NewPlatform(g, testPolicy())
	for i := 0; i < 10; i++ {
		if _, err := p.Submit(digg.UserID(i), "seed", 0.5, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
	}
	mutate(t, p, 9, 300)

	// FromPlatform adopts the source's story objects, so the reference
	// for post-split writes must be an independent deep copy. The split
	// re-installs stories, which leaves them compacted (corpus-install
	// parity), so the reference compacts its copies to match.
	ref, err := digg.RestorePlatform(p.Graph, p.Policy, p.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ref.NumStories(); i++ {
		if err := ref.CompactStory(digg.StoryID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := FromPlatform(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	compareViews(t, ref, s)

	// The split store keeps accepting the same writes with the same
	// results.
	mutate(t, ref, 10, 100)
	mutate(t, s, 10, 100)
	compareViews(t, ref, s)
}

func TestFromPlatformRejectsShardedSource(t *testing.T) {
	g := testGraph(t)
	p := digg.NewShardPlatform(g, testPolicy(), 1, 2)
	if _, err := FromPlatform(p, 2); err == nil {
		t.Fatal("sharded source accepted")
	}
}

// TestBulkMatchesSerial applies the same ops through DiggMany /
// SubmitMany on a sharded store and serially on a single platform;
// outcomes and final state must agree. Vote timestamps increase in op
// order so the deterministic (PromotedAt, ID) promotion merge matches
// the serial promotion order.
func TestBulkMatchesSerial(t *testing.T) {
	g := testGraph(t)
	single := digg.NewPlatform(g, testPolicy())
	sharded := New(g, testPolicy(), 4)
	r := rng.New(21)

	subs := make([]digg.SubmitOp, 40)
	for i := range subs {
		u := digg.UserID(r.Intn(400))
		if i%11 == 3 {
			u = 40000 // invalid: exercises per-op rejection
		}
		subs[i] = digg.SubmitOp{User: u, Title: "bulk", Interest: 0.5, At: digg.Minutes(i)}
	}
	subOut := make([]digg.SubmitOutcome, len(subs))
	if err := sharded.SubmitMany(subs, subOut); err != nil {
		t.Fatal(err)
	}
	for i, op := range subs {
		st, err := single.Submit(op.User, op.Title, op.Interest, op.At)
		if (err != nil) != (subOut[i].Err != nil) {
			t.Fatalf("submit %d: sharded err %v, single err %v", i, subOut[i].Err, err)
		}
		if err == nil && st.ID != subOut[i].Story.ID {
			t.Fatalf("submit %d: sharded id %d, single id %d", i, subOut[i].Story.ID, st.ID)
		}
	}

	diggs := make([]digg.DiggOp, 600)
	for i := range diggs {
		id := digg.StoryID(r.Intn(single.NumStories()))
		if i%37 == 5 {
			id = 99999 // unknown story: rejected before routing
		}
		diggs[i] = digg.DiggOp{Story: id, User: digg.UserID(r.Intn(400)), At: digg.Minutes(1000 + i)}
	}
	diggOut := make([]digg.DiggOutcome, len(diggs))
	if err := sharded.DiggMany(diggs, diggOut); err != nil {
		t.Fatal(err)
	}
	for i, op := range diggs {
		res, err := single.Digg(op.Story, op.User, op.At)
		if (err != nil) != (diggOut[i].Err != nil) {
			t.Fatalf("digg %d: sharded err %v, single err %v", i, diggOut[i].Err, err)
		}
		if err == nil && res != diggOut[i].Result {
			t.Fatalf("digg %d: sharded %+v, single %+v", i, diggOut[i].Result, res)
		}
	}

	compareStores(t, single, sharded)
	if single.Generation() != sharded.Generation() {
		t.Fatalf("generation: sharded %d, single %d", sharded.Generation(), single.Generation())
	}
}

// TestStatsAccount checks the per-shard counters add up to the work
// routed at them.
func TestStatsAccount(t *testing.T) {
	g := testGraph(t)
	s := New(g, testPolicy(), 3)
	for i := 0; i < 9; i++ {
		if _, err := s.Submit(digg.UserID(i), "s", 0.5, digg.Minutes(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats: %v", stats)
	}
	for i, st := range stats {
		if st.Shard != i || st.Stories != 3 || st.Writes != 3 {
			t.Fatalf("shard %d stats: %+v", i, st)
		}
	}
}

func TestStoryRouting(t *testing.T) {
	g := testGraph(t)
	s := New(g, testPolicy(), 4)
	for i := 0; i < 13; i++ {
		st, err := s.Submit(digg.UserID(i), "s", 0.5, digg.Minutes(i))
		if err != nil {
			t.Fatal(err)
		}
		if st.ID != digg.StoryID(i) {
			t.Fatalf("story %d minted id %d", i, st.ID)
		}
	}
	if _, err := s.Story(13); err == nil {
		t.Fatal("out-of-range story served")
	}
	if _, err := s.Story(-1); err == nil {
		t.Fatal("negative story served")
	}
	if v := s.StoryVersion(5); v == 0 {
		t.Fatal("story 5 has no version")
	}
}
