// Package shard scales the write path across cores: a shard.Store
// implements digg.Store by partitioning stories over N shard-local
// *digg.Platform instances (optionally each wrapped in its own
// durable.Store with a private WAL directory), so concurrent write
// bursts never contend on one lock or one fsync.
//
// Routing is a fixed consistent hash of the story ID: shard(id) =
// id % N. The hash is collision-free and dense because the shards
// allocate IDs from interleaved sequences (digg.NewShardPlatform —
// shard i's k-th story carries global ID i + k*N), which keeps the
// merged story sequence identical to what a single platform would
// have produced: global IDs are assigned 0, 1, 2, ... in submission
// order no matter how many shards serve them.
//
// Reads merge by scatter-gather. The store maintains a merged
// append-only story slice (index == global ID) and a merged
// promotion-order slice, so every digg.Store query — front page,
// upcoming, cursors over stories — behaves exactly as on a single
// platform, and the serving layer's pre-rendered snapshots work
// unchanged. The reputation ranking is recomputed from the merged
// promotion tally with the same ordering rules as digg.Platform.
//
// The composite generation is the sum of the per-shard generations:
// every mutation increments exactly one shard's generation, so the
// sum is strictly monotonic and equal sums imply identical state
// within a process lifetime. The per-shard generation vector
// (digg.Sharded) additionally stamps read views and cursors so
// pagination guarantees survive sharding.
//
// Concurrency contract: identical to digg.Platform — single-writer
// under the caller's external synchronization. The concurrency inside
// DiggMany/SubmitMany/EndBatch is internal: it partitions work across
// shards and joins before returning.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/graph"
	"diggsim/internal/obs"
)

// histMerge times the serial tail of a bulk apply — promotion merging
// and story-sequence extension — the part that cannot overlap across
// shards.
var histMerge = obs.Default.Histogram("diggsim_shard_merge_seconds", "",
	"Scatter-gather merge latency after a bulk apply (promotion merge, story-sequence extension).")

// Store is an N-way sharded digg.Store.
type Store struct {
	n      int
	graph  *graph.Graph
	shards []digg.Store     // the per-shard stores writes route to
	plats  []*digg.Platform // the shards' platforms (always non-nil)
	stores []*durable.Store // per-shard durable wrappers, nil when in-memory

	// stories is the merged story sequence, index == global story ID.
	// Like Platform.Stories it is shared and append-only.
	stories []*digg.Story
	// promoted is the merged promotion order, append-only: a promotion
	// is appended when the vote that caused it lands (batch promotions
	// in (PromotedAt, ID) order; see bulk.go), or reconstructed by a
	// deterministic k-way merge at Open.
	promoted []digg.StoryID

	// Merged reputation state, maintained with the same rules and
	// locking discipline as digg.Platform's.
	promotedBySubmitter map[digg.UserID]int
	rankMu              sync.Mutex
	rankCache           map[digg.UserID]int
	rankedCache         []digg.UserID

	// stats holds per-shard write/replay counters for /metrics. The
	// write counters are atomics because DiggMany/SubmitMany increment
	// them from per-shard goroutines.
	stats []shardCounters
	// applyHist times each shard's bulk sub-batch apply (commands plus
	// the shard's WAL group commit), labeled shard="i".
	applyHist []*obs.Histogram

	// Replicated-apply bookkeeping (repl.go): how many of each shard's
	// platform promotions have been folded toward the merged order, and
	// promotions whose stories are still outside the merged dense
	// prefix. Empty on a primary.
	replSeen    []int
	replPending []pendingPromo

	rec RecoveryInfo
	dir string
}

type shardCounters struct {
	writes   atomic.Uint64 // commands applied since process start
	replayed uint64        // WAL records replayed at Open (immutable)
}

// Stat is a point-in-time snapshot of one shard's counters.
type Stat struct {
	Shard      int
	Stories    int
	Generation uint64
	// Writes counts commands applied to the shard since process start.
	Writes uint64
	// Replayed counts WAL records replayed when the shard was opened.
	Replayed uint64
}

// Store implements the full store seam including the sharded
// capabilities.
var (
	_ digg.Store      = (*Store)(nil)
	_ digg.Batcher    = (*Store)(nil)
	_ digg.BulkWriter = (*Store)(nil)
	_ digg.Sharded    = (*Store)(nil)
)

// New creates an empty in-memory sharded store over the given social
// graph with n shards (n >= 1) and the given promotion policy (nil
// means the classic default).
func New(g *graph.Graph, policy digg.PromotionPolicy, n int) *Store {
	if n < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", n))
	}
	s := &Store{
		n:                   n,
		graph:               g,
		shards:              make([]digg.Store, n),
		plats:               make([]*digg.Platform, n),
		stores:              make([]*durable.Store, n),
		promotedBySubmitter: make(map[digg.UserID]int),
		stats:               make([]shardCounters, n),
		applyHist:           make([]*obs.Histogram, n),
		replSeen:            make([]int, n),
	}
	for i := 0; i < n; i++ {
		s.applyHist[i] = obs.Default.Histogram("diggsim_shard_apply_seconds",
			`shard="`+fmt.Sprint(i)+`"`,
			"Per-shard bulk sub-batch apply latency, including the shard's WAL group commit.")
	}
	for i := 0; i < n; i++ {
		p := digg.NewShardPlatform(g, policy, digg.StoryID(i), digg.StoryID(n))
		s.plats[i] = p
		s.shards[i] = p
	}
	return s
}

// FromPlatform splits an existing single platform (typically a
// pregenerated corpus) into an n-way sharded store. Stories are
// re-installed into their owning shards in submission order, so they
// arrive in the compacted state exactly as corpus installation leaves
// them on a single platform; the merged promotion order is copied
// from the source so serving output is unchanged by the split.
func FromPlatform(src *digg.Platform, n int) (*Store, error) {
	if off, step := src.IDScheme(); off != 0 || step != 1 {
		return nil, fmt.Errorf("shard: FromPlatform needs an unsharded source (scheme %d/%d)", off, step)
	}
	s := New(src.SocialGraph(), src.Policy, n)
	for _, st := range src.Stories() {
		sh := int(st.ID) % n
		if err := s.plats[sh].InstallStory(st); err != nil {
			return nil, fmt.Errorf("shard: splitting story %d: %w", st.ID, err)
		}
		s.stories = append(s.stories, st)
		s.stats[sh].writes.Add(1)
	}
	// Preserve the source's promotion order rather than the shards'
	// install order so front-page output is identical post-split.
	s.promoted = append(s.promoted, src.PromotedIDs()...)
	for _, id := range s.promoted {
		s.promotedBySubmitter[s.stories[id].Submitter]++
	}
	return s, nil
}

// ShardCount returns the number of shards.
func (s *Store) ShardCount() int { return s.n }

// ShardGenerations appends the per-shard generation vector to dst.
func (s *Store) ShardGenerations(dst []uint64) []uint64 {
	for _, sh := range s.shards {
		dst = append(dst, sh.Generation())
	}
	return dst
}

// Stats snapshots the per-shard counters for metrics exposition.
func (s *Store) Stats() []Stat {
	out := make([]Stat, s.n)
	for i := range out {
		out[i] = Stat{
			Shard:      i,
			Stories:    s.plats[i].NumStories(),
			Generation: s.shards[i].Generation(),
			Writes:     s.stats[i].writes.Load(),
			Replayed:   s.stats[i].replayed,
		}
	}
	return out
}

// Recovery reports what Open did, shard by shard.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Dir returns the data directory ("" for an in-memory store).
func (s *Store) Dir() string { return s.dir }

// shardOf returns the shard owning global story ID id (id >= 0).
func (s *Store) shardOf(id digg.StoryID) int { return int(id) % s.n }

// --- queries ---

// Generation returns the composite generation: the sum of the shard
// generations. Every mutation increments exactly one shard, so the
// sum is strictly monotonic and equal sums imply identical state.
func (s *Store) Generation() uint64 {
	var g uint64
	for _, sh := range s.shards {
		g += sh.Generation()
	}
	return g
}

// NumStories returns the merged story count.
func (s *Store) NumStories() int { return len(s.stories) }

// StoryVersion routes to the owning shard.
func (s *Store) StoryVersion(id digg.StoryID) uint32 {
	if id < 0 || int(id) >= len(s.stories) {
		return 0
	}
	return s.shards[s.shardOf(id)].StoryVersion(id)
}

// Story returns the story with the given global ID.
func (s *Store) Story(id digg.StoryID) (*digg.Story, error) {
	if id < 0 || int(id) >= len(s.stories) {
		return nil, fmt.Errorf("%w %d", digg.ErrNoStory, id)
	}
	return s.stories[id], nil
}

// Stories returns the merged story sequence in global submission
// order. The slice is shared and append-only.
func (s *Store) Stories() []*digg.Story { return s.stories }

// FrontPage returns promoted stories from the merged promotion order,
// most recently promoted first.
func (s *Store) FrontPage(limit int) []*digg.Story {
	var out []*digg.Story
	for i := len(s.promoted) - 1; i >= 0; i-- {
		out = append(out, s.stories[s.promoted[i]])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// PromotedCount returns the merged front-page story count.
func (s *Store) PromotedCount() int { return len(s.promoted) }

// PromotedIDs returns the merged promotion order, oldest first. The
// slice is shared and append-only, as the cursor contract requires.
func (s *Store) PromotedIDs() []digg.StoryID { return s.promoted }

// Upcoming scans the merged sequence newest-first, exactly as a
// single platform would.
func (s *Store) Upcoming(now digg.Minutes, limit int) []*digg.Story {
	var out []*digg.Story
	for i := len(s.stories) - 1; i >= 0; i-- {
		st := s.stories[i]
		if st.Promoted || st.SubmittedAt > now {
			continue
		}
		out = append(out, st)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// SocialGraph returns the shared immutable social graph.
func (s *Store) SocialGraph() *graph.Graph { return s.graph }

// rankedLocked computes the merged reputation ordering with the same
// rules as digg.Platform: promoted submissions desc, fan count desc,
// user ID asc. Callers hold rankMu.
func (s *Store) rankedLocked() []digg.UserID {
	if s.rankedCache != nil {
		return s.rankedCache
	}
	type entry struct {
		u        digg.UserID
		promoted int
	}
	entries := make([]entry, 0, len(s.promotedBySubmitter))
	for u, c := range s.promotedBySubmitter {
		entries = append(entries, entry{u, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].promoted != entries[j].promoted {
			return entries[i].promoted > entries[j].promoted
		}
		fi, fj := s.graph.InDegree(entries[i].u), s.graph.InDegree(entries[j].u)
		if fi != fj {
			return fi > fj
		}
		return entries[i].u < entries[j].u
	})
	ranked := make([]digg.UserID, len(entries))
	for i, e := range entries {
		ranked[i] = e.u
	}
	s.rankedCache = ranked
	return ranked
}

// TopUsers returns up to k users from the merged reputation ranking.
func (s *Store) TopUsers(k int) []digg.UserID {
	s.rankMu.Lock()
	ranked := s.rankedLocked()
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]digg.UserID, k)
	copy(out, ranked[:k])
	s.rankMu.Unlock()
	return out
}

// Ranks returns the shared, immutable merged user -> rank map.
func (s *Store) Ranks() map[digg.UserID]int {
	s.rankMu.Lock()
	defer s.rankMu.Unlock()
	if s.rankCache == nil {
		ranked := s.rankedLocked()
		m := make(map[digg.UserID]int, len(ranked))
		for i, u := range ranked {
			m[u] = i + 1
		}
		s.rankCache = m
	}
	return s.rankCache
}

// UserRank returns u's merged 1-based rank (0 if unranked).
func (s *Store) UserRank(u digg.UserID) int {
	s.rankMu.Lock()
	defer s.rankMu.Unlock()
	if s.rankCache == nil {
		ranked := s.rankedLocked()
		m := make(map[digg.UserID]int, len(ranked))
		for i, t := range ranked {
			m[t] = i + 1
		}
		s.rankCache = m
	}
	return s.rankCache[u]
}

func (s *Store) invalidateRanks() {
	s.rankMu.Lock()
	s.rankCache = nil
	s.rankedCache = nil
	s.rankMu.Unlock()
}

// recordPromotion appends a promotion to the merged order and updates
// the reputation tally. Caller is the single writer.
func (s *Store) recordPromotion(id digg.StoryID) {
	s.promoted = append(s.promoted, id)
	s.promotedBySubmitter[s.stories[id].Submitter]++
	s.invalidateRanks()
}

// --- commands ---

// Submit routes the next global story ID's submission to its shard.
func (s *Store) Submit(u digg.UserID, title string, interest float64, t digg.Minutes) (*digg.Story, error) {
	id := digg.StoryID(len(s.stories))
	sh := s.shardOf(id)
	st, err := s.shards[sh].Submit(u, title, interest, t)
	if err != nil {
		return nil, err
	}
	if st.ID != id {
		// Unreachable while the merged slice mirrors the shards; a
		// mismatch means the store and its shards diverged.
		panic(fmt.Sprintf("shard: shard %d assigned story %d, merged sequence expected %d", sh, st.ID, id))
	}
	s.stories = append(s.stories, st)
	s.stats[sh].writes.Add(1)
	return st, nil
}

// InstallStory adopts a fully simulated story as the next global
// story, routing it to the owning shard.
func (s *Store) InstallStory(st *digg.Story) error {
	if want := digg.StoryID(len(s.stories)); st.ID != want {
		return fmt.Errorf("digg: InstallStory out of order: story %d, next id %d", st.ID, want)
	}
	sh := s.shardOf(st.ID)
	if err := s.shards[sh].InstallStory(st); err != nil {
		return err
	}
	s.stories = append(s.stories, st)
	s.stats[sh].writes.Add(1)
	if st.Promoted {
		s.recordPromotion(st.ID)
	}
	return nil
}

// Digg routes a vote to the story's shard and folds any resulting
// promotion into the merged promotion order.
func (s *Store) Digg(id digg.StoryID, u digg.UserID, t digg.Minutes) (digg.DiggResult, error) {
	if id < 0 || int(id) >= len(s.stories) {
		return digg.DiggResult{}, fmt.Errorf("%w %d", digg.ErrNoStory, id)
	}
	sh := s.shardOf(id)
	res, err := s.shards[sh].Digg(id, u, t)
	if err != nil {
		return res, err
	}
	s.stats[sh].writes.Add(1)
	if res.Promoted {
		s.recordPromotion(id)
	}
	return res, nil
}

// CompactStory routes to the owning shard.
func (s *Store) CompactStory(id digg.StoryID) error {
	if id < 0 || int(id) >= len(s.stories) {
		return fmt.Errorf("%w %d", digg.ErrNoStory, id)
	}
	sh := s.shardOf(id)
	if err := s.shards[sh].CompactStory(id); err != nil {
		return err
	}
	s.stats[sh].writes.Add(1)
	return nil
}
