package shard

// durable.go gives each shard its own write-ahead log: a sharded data
// directory is N independent durable.Store directories named
// shard-0000 ... shard-NNNN, each fully self-describing (its own
// graph file, checkpoints and WAL; the checkpointed platform state
// carries the shard's ID scheme). Recovery opens every shard
// independently, then re-densifies the merged global ID sequence: if
// a crash left one shard's WAL durable past another's for the same
// unacknowledged burst, the trailing stories beyond the first hole in
// the interleaved sequence are trimmed (they were never acknowledged
// — a batch acks only after every shard's fsync) and the trimming
// shards are checkpointed immediately so their WALs cannot resurrect
// the trimmed records.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"diggsim/internal/digg"
	"diggsim/internal/durable"
)

// shardDirName returns the subdirectory name for shard i.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

var shardDirRe = regexp.MustCompile(`^shard-(\d{4})$`)

// ShardDirs lists the shard subdirectories of a sharded data
// directory in shard order, validating that they are exactly
// shard-0000 .. shard-(n-1) with no gaps.
func ShardDirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && shardDirRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: %s contains no shard-NNNN directories", dir)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		if name != shardDirName(i) {
			return nil, fmt.Errorf("shard: %s: found %s, want %s (gap in shard sequence)", dir, name, shardDirName(i))
		}
		out[i] = filepath.Join(dir, name)
	}
	return out, nil
}

// Exists reports whether dir contains a sharded durable store (at
// least its first shard directory).
func Exists(dir string) bool {
	return durable.Exists(filepath.Join(dir, shardDirName(0)))
}

// RecoveryInfo describes what Open did, shard by shard.
type RecoveryInfo struct {
	// Shards holds each shard's own recovery report, in shard order.
	Shards []durable.RecoveryInfo
	// Trimmed counts stories dropped to re-densify the merged global
	// ID sequence; they belonged to writes that were never
	// acknowledged (zero after any clean shutdown).
	Trimmed int
	// Generation is the recovered composite generation.
	Generation uint64
}

// Create initializes dir as a sharded data directory around an
// existing unsharded platform (typically a pregenerated corpus),
// splitting it across n shards and creating one durable store per
// shard. The same genesis blob is recorded in every shard.
func Create(dir string, src *digg.Platform, n int, genesis []byte, opts durable.Options) (*Store, error) {
	s, err := FromPlatform(src, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ds, err := durable.Create(filepath.Join(dir, shardDirName(i)), s.plats[i], genesis, opts)
		if err != nil {
			closeShards(s.stores[:i])
			return nil, fmt.Errorf("shard: creating shard %d: %w", i, err)
		}
		s.stores[i] = ds
		s.shards[i] = ds
	}
	s.dir = dir
	s.rec = RecoveryInfo{Shards: recoveries(s.stores), Generation: s.Generation()}
	return s, nil
}

// Open recovers a sharded store from dir: every shard directory is
// opened independently (newest checkpoint + WAL tail replay), the
// merged story sequence is rebuilt by interleaving the shards' ID
// sequences, trailing unacknowledged stories past the first hole are
// trimmed, and the merged promotion order is reconstructed by a
// deterministic k-way merge on (PromotedAt, ID) that preserves each
// shard's internal order.
func Open(dir string, opts durable.Options) (*Store, error) {
	dirs, err := ShardDirs(dir)
	if err != nil {
		return nil, err
	}
	n := len(dirs)
	stores := make([]*durable.Store, n)
	for i, d := range dirs {
		ds, err := durable.Open(d, opts)
		if err != nil {
			closeShards(stores[:i])
			return nil, fmt.Errorf("shard: opening shard %d: %w", i, err)
		}
		stores[i] = ds
		if i == 0 {
			// Every shard persists the same graph; decode it once and
			// share the instance.
			opts.Graph = ds.SocialGraph()
		}
		if off, step := ds.Unwrap().IDScheme(); off != digg.StoryID(i) || step != digg.StoryID(n) {
			closeShards(stores[:i+1])
			return nil, fmt.Errorf("shard: shard %d recovered with ID scheme %d/%d, want %d/%d", i, off, step, i, n)
		}
	}

	s := New(stores[0].SocialGraph(), opts.Policy, n)
	for i, ds := range stores {
		s.stores[i] = ds
		s.shards[i] = ds
		s.plats[i] = ds.Unwrap()
		s.stats[i].replayed = uint64(ds.Recovery().Replayed)
	}
	s.dir = dir

	// Re-densify: the first missing global ID across all shards bounds
	// the acknowledged prefix; anything a shard holds beyond it came
	// from a burst that never fully fsynced and was never acked.
	trimmed := 0
	prefix := s.densePrefix()
	for i := 0; i < n; i++ {
		keep := ownedBelow(prefix, i, n)
		if dropped := s.plats[i].TrimStories(keep); dropped > 0 {
			trimmed += dropped
			// Checkpoint immediately so the shard's WAL (which still
			// holds the trimmed records) can never replay them.
			if err := s.stores[i].Checkpoint(); err != nil {
				closeShards(stores)
				return nil, fmt.Errorf("shard: checkpointing shard %d after trim: %w", i, err)
			}
		}
	}

	// Rebuild the merged story sequence by interleaving.
	s.stories = make([]*digg.Story, prefix)
	for k := 0; k < prefix; k++ {
		s.stories[k] = s.plats[k%n].Stories()[k/n]
	}
	// Rebuild the merged promotion order by k-way merge.
	s.promoted = s.mergeShardPromotions()
	for _, id := range s.promoted {
		s.promotedBySubmitter[s.stories[id].Submitter]++
	}
	s.rec = RecoveryInfo{Shards: recoveries(stores), Trimmed: trimmed, Generation: s.Generation()}
	return s, nil
}

// densePrefix returns the length of the dense merged prefix: the
// smallest global ID no shard holds.
func (s *Store) densePrefix() int {
	prefix := -1
	for i, p := range s.plats {
		// Shard i's first missing global ID is i + count*n.
		miss := i + p.NumStories()*s.n
		if prefix < 0 || miss < prefix {
			prefix = miss
		}
	}
	return prefix
}

// ownedBelow returns how many global IDs below bound shard i owns
// under an n-way interleave.
func ownedBelow(bound, i, n int) int {
	if bound <= i {
		return 0
	}
	return (bound - i + n - 1) / n
}

// mergeShardPromotions merges the shards' promotion orders into one
// list sorted by (PromotedAt, ID), preserving each shard's internal
// order (which is already non-decreasing in its own apply sequence
// under monotone simulation time). The merge is deterministic, so
// repeated recoveries of the same shard states produce the same
// front page.
func (s *Store) mergeShardPromotions() []digg.StoryID {
	type head struct {
		ids []digg.StoryID
		pos int
	}
	heads := make([]head, s.n)
	total := 0
	for i, p := range s.plats {
		heads[i].ids = p.PromotedIDs()
		total += len(heads[i].ids)
	}
	merged := make([]digg.StoryID, 0, total)
	for len(merged) < total {
		best := -1
		var bestID digg.StoryID
		var bestAt digg.Minutes
		for i := range heads {
			h := &heads[i]
			if h.pos >= len(h.ids) {
				continue
			}
			id := h.ids[h.pos]
			at := s.stories[id].PromotedAt
			if best < 0 || at < bestAt || (at == bestAt && id < bestID) {
				best, bestID, bestAt = i, id, at
			}
		}
		merged = append(merged, bestID)
		heads[best].pos++
	}
	return merged
}

func recoveries(stores []*durable.Store) []durable.RecoveryInfo {
	out := make([]durable.RecoveryInfo, len(stores))
	for i, ds := range stores {
		out[i] = ds.Recovery()
	}
	return out
}

func closeShards(stores []*durable.Store) {
	for _, ds := range stores {
		if ds != nil {
			ds.Close()
		}
	}
}

// Genesis returns the store's genesis record, or nil for an in-memory
// store. Create writes the same blob to every shard; shard 0's copy is
// returned.
func (s *Store) Genesis() []byte {
	if s.stores[0] == nil {
		return nil
	}
	return s.stores[0].Genesis()
}

// Checkpoint checkpoints every durable shard.
func (s *Store) Checkpoint() error {
	for i, ds := range s.stores {
		if ds == nil {
			continue
		}
		if err := ds.Checkpoint(); err != nil {
			return fmt.Errorf("shard: checkpointing shard %d: %w", i, err)
		}
	}
	return nil
}

// Sync forces every durable shard's WAL to disk.
func (s *Store) Sync() error {
	for i, ds := range s.stores {
		if ds == nil {
			continue
		}
		if err := ds.Sync(); err != nil {
			return fmt.Errorf("shard: syncing shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every durable shard, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, ds := range s.stores {
		if ds == nil {
			continue
		}
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
