// Package dense provides an epoch-stamped membership set over a fixed
// integer ID range [0, n).
//
// Membership is a dense []uint32 stamp array: id is a member iff
// stamp[id] equals the set's current epoch, so Reset empties the set
// in O(1) by bumping the epoch instead of clearing or reallocating.
// The simulator resets one set per story across thousands of stories;
// this is what removes per-story map (and clearing) costs from the
// corpus generation hot path. A Set is not safe for concurrent use.
package dense

// Set is an epoch-stamped dense membership set. The zero value is an
// empty set over an empty range; call Reset to size it.
type Set struct {
	stamp []uint32
	epoch uint32
	count int
}

// Reset empties the set and (re)sizes it to cover [0, n). Existing
// capacity is reused: the common case is a pure epoch bump.
func (s *Set) Reset(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap: stale stamps could alias, clear once
		clear(s.stamp)
		s.epoch = 1
	}
	s.count = 0
}

// Contains reports whether id is a member. IDs outside the range are
// simply non-members.
func (s *Set) Contains(id int) bool {
	return id >= 0 && id < len(s.stamp) && s.stamp[id] == s.epoch
}

// Add inserts id. It is idempotent. id must be inside [0, n).
func (s *Set) Add(id int) {
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		s.count++
	}
}

// Len returns the number of members.
func (s *Set) Len() int { return s.count }
