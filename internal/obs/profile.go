package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"
)

// ProfilerOptions parameterizes the continuous capture loop.
type ProfilerOptions struct {
	// Period is the length of each CPU capture window (and the heap
	// snapshot cadence). Default 30s.
	Period time.Duration
	// Keep is how many profiles of each kind to retain; older files
	// are pruned. Default 10.
	Keep int
	// Logf, when non-nil, receives one line per rotation and any
	// non-fatal errors.
	Logf func(format string, args ...any)
}

func (o ProfilerOptions) withDefaults() ProfilerOptions {
	if o.Period <= 0 {
		o.Period = 30 * time.Second
	}
	if o.Keep <= 0 {
		o.Keep = 10
	}
	return o
}

// CaptureProfiles runs the continuous profiling loop until ctx is
// cancelled: back-to-back CPU profile windows of opts.Period, a heap
// profile at the end of each window, and pruning so at most opts.Keep
// files of each kind remain. Files are named cpu-<stamp>.pprof and
// heap-<stamp>.pprof; analyze with `go tool pprof`.
//
// The capture cost is the runtime's profiling sampler (~1% CPU for
// the default 100Hz rate) plus one heap encode per period — cheap
// enough to leave on in production, which is the point: when a
// latency regression shows up in the histograms, the profile covering
// that window is already on disk.
func CaptureProfiles(ctx context.Context, dir string, opts ProfilerOptions) error {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	timer := time.NewTimer(opts.Period)
	defer timer.Stop()
	for {
		stamp := time.Now().UTC().Format("20060102-150405.000")
		cpuPath := filepath.Join(dir, "cpu-"+stamp+".pprof")
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: start cpu profile: %w", err)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(opts.Period)
		stopped := false
		select {
		case <-ctx.Done():
			stopped = true
		case <-timer.C:
		}
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			logf("obs: closing %s: %v", cpuPath, err)
		}
		if err := writeHeapProfile(filepath.Join(dir, "heap-"+stamp+".pprof")); err != nil {
			logf("obs: heap profile: %v", err)
		}
		for _, prefix := range []string{"cpu-", "heap-"} {
			if err := pruneProfiles(dir, prefix, opts.Keep); err != nil {
				logf("obs: pruning %s*: %v", prefix, err)
			}
		}
		logf("obs: captured profile window %s", stamp)
		if stopped {
			return nil
		}
	}
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// pruneProfiles removes the oldest prefix*.pprof files past keep.
// Stamps sort lexicographically, so name order is age order.
func pruneProfiles(dir, prefix string, keep int) error {
	matches, err := filepath.Glob(filepath.Join(dir, prefix+"*.pprof"))
	if err != nil {
		return err
	}
	if len(matches) <= keep {
		return nil
	}
	sort.Strings(matches)
	for _, path := range matches[:len(matches)-keep] {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
