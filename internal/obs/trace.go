package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Trace IDs are 64-bit values minted from an atomic counter mixed
// through splitmix64 — unique within a process, well-distributed
// across processes by the start-time seed, and far cheaper than
// crypto/rand on the request path.
var (
	traceSeed uint64 = uint64(time.Now().UnixNano())
	traceCtr  atomic.Uint64
)

// NewTraceID mints a fresh trace ID.
func NewTraceID() uint64 {
	return splitmix64(traceSeed + traceCtr.Add(1))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// TraceIDString formats id as 16 lowercase hex digits — the wire form
// carried in X-Trace-Id headers and logged with slow-request events.
func TraceIDString(id uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the 16-lowercase-hex wire form produced by
// TraceIDString. ok is false for any other shape (wrong length, upper
// case, non-hex digits), so untrusted header values fail closed and
// the caller mints a fresh ID instead.
func ParseTraceID(s string) (id uint64, ok bool) {
	if len(s) != 16 {
		return 0, false
	}
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	return id, true
}

// SpanRec is one completed span within a trace: a named stage with its
// offset from the trace start and its duration.
type SpanRec struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset"`
	Dur    time.Duration `json:"duration"`
}

// Trace collects the spans of one request. The serving middleware
// allocates traces from a pool, attaches them to the request context,
// and drains them into the slow-trace ring when the request exceeds
// the slow threshold. Span recording is mutex-guarded (spans may end
// on worker goroutines); the capacity is fixed, so a trace never
// allocates after Reset.
type Trace struct {
	id    uint64
	start time.Time

	mu    sync.Mutex
	spans []SpanRec
}

// traceSpanCap bounds spans per trace; later spans are dropped rather
// than grown, keeping traces allocation-free after construction.
const traceSpanCap = 32

// NewTrace returns a trace ready for use.
func NewTrace(id uint64, start time.Time) *Trace {
	t := &Trace{spans: make([]SpanRec, 0, traceSpanCap)}
	t.Reset(id, start)
	return t
}

// Reset rearms a pooled trace for a new request.
func (t *Trace) Reset(id uint64, start time.Time) {
	t.id = id
	t.start = start
	t.spans = t.spans[:0]
}

// ID returns the trace ID.
func (t *Trace) ID() uint64 { return t.id }

// StartSpan opens a named span. End it with Span.End; spans past the
// fixed capacity are silently dropped.
func (t *Trace) StartSpan(name string) Span {
	return Span{t: t, name: name, begin: time.Now()}
}

// Span is an open span handle (a value — no allocation).
type Span struct {
	t     *Trace
	name  string
	begin time.Time
}

// End records the span. A zero Span (from a nil trace lookup) is a
// no-op, so call sites need no nil checks.
func (s Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, SpanRec{
			Name:   s.name,
			Offset: s.begin.Sub(t.start),
			Dur:    time.Since(s.begin),
		})
	}
	t.mu.Unlock()
}

// Spans copies the recorded spans out of the trace.
func (t *Trace) Spans() []SpanRec {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRec(nil), t.spans...)
}

type traceKey struct{}

// WithTrace attaches t to ctx.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. Combined with
// the zero-Span no-op this makes instrumentation sites one-liners:
//
//	defer obs.SpanFrom(ctx, "apply").End()
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFrom opens a span on ctx's trace, or returns a no-op span when
// no trace is attached.
func SpanFrom(ctx context.Context, name string) Span {
	if t := TraceFrom(ctx); t != nil {
		return t.StartSpan(name)
	}
	return Span{}
}

// TraceEntry is one finished slow request, as retained by the ring.
type TraceEntry struct {
	ID       string
	Method   string
	Path     string
	Status   int
	Start    time.Time
	Duration time.Duration
	Spans    []SpanRec
}

// TraceRing retains the most recent slow traces in a fixed ring.
// Add is mutex-guarded but runs only for requests past the slow
// threshold, so it never touches the fast path.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEntry
	next  int
	total uint64
}

// DefaultRing is the process-wide slow-trace ring the serving
// middleware records into and /debug/obs serves from.
var DefaultRing = NewTraceRing(64)

// NewTraceRing returns a ring retaining the last n traces.
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceEntry, 0, n)}
}

// Add records one slow trace, evicting the oldest when full.
func (r *TraceRing) Add(e TraceEntry) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many slow traces have ever been recorded.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEntry, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
