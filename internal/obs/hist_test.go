package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketLayout pins the bucket scheme: contiguous half-open
// ranges, index/bounds round-trip exactly, and growth stays within
// the power-of-~1.25 contract.
func TestBucketLayout(t *testing.T) {
	prevUpper := uint64(0)
	for i := 0; i < numBuckets; i++ {
		lower, upper := BucketBounds(i)
		if lower != prevUpper {
			t.Fatalf("bucket %d: lower %d, want %d (contiguity)", i, lower, prevUpper)
		}
		if upper <= lower && i != numBuckets-1 {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lower, upper)
		}
		if got := bucketIndex(lower); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lower, got, i)
		}
		if upper > lower {
			if got := bucketIndex(upper - 1); got != i {
				t.Fatalf("bucketIndex(%d) = %d, want %d", upper-1, got, i)
			}
		}
		// Relative width <= 25% once past the exact small values.
		if i >= subCount && lower > 0 {
			if ratio := float64(upper) / float64(lower); ratio > 1.2501 {
				t.Fatalf("bucket %d: bound ratio %.4f > 1.25", i, ratio)
			}
		}
		prevUpper = upper
	}
}

// TestQuantileAccuracy is the property test against a sorted
// reference: for heavy-tailed samples, every estimated quantile must
// land inside the bucket holding the true empirical quantile — the
// tightest guarantee a bucketed histogram can make.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(5000)
		samples := make([]uint64, n)
		var h Histogram
		for i := range samples {
			// Log-uniform over ~6 decades: the shape of real latency.
			v := uint64(100 * rng.ExpFloat64() * float64(uint64(1)<<uint(rng.Intn(20))))
			samples[i] = v
			h.Observe(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		if got := snap.Count(); got != uint64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, got, n)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(n))
			if rank >= n {
				rank = n - 1
			}
			ref := samples[rank]
			lower, upper := BucketBounds(bucketIndex(ref))
			est := snap.Quantile(q)
			if est < float64(lower) || est > float64(upper) {
				t.Errorf("trial %d q=%.3f: estimate %.0f outside bucket [%d,%d) of reference %d",
					trial, q, est, lower, upper, ref)
			}
		}
	}
}

// TestMergeAssociativity: (a+b)+c == a+(b+c) == c+(b+a), bucket by
// bucket and in every quantile.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func() HistSnapshot {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Observe(time.Duration(rng.Intn(1_000_000)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	merge := func(parts ...HistSnapshot) HistSnapshot {
		var out HistSnapshot
		for i := range parts {
			out.Merge(&parts[i])
		}
		return out
	}
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	rev := merge(c, b, a)
	for _, other := range []HistSnapshot{right, rev} {
		if left.Sum != other.Sum {
			t.Fatalf("merged sums differ: %d vs %d", left.Sum, other.Sum)
		}
		for i := range left.Counts {
			if left.Counts[i] != other.Counts[i] {
				t.Fatalf("bucket %d differs after reordering: %d vs %d", i, left.Counts[i], other.Counts[i])
			}
		}
	}
	if left.Count() != 3000 {
		t.Fatalf("merged count %d, want 3000", left.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("q%.2f differs across merge orders", q)
		}
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines;
// run under -race in CI, and the final count must be exact.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(rng.Intn(10_000_000)))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var snap HistSnapshot
		for i := 0; i < 100; i++ {
			h.Load(&snap) // concurrent reads must be race-clean
			_ = snap.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	final := h.Snapshot()
	if got := final.Count(); got != workers*perWorker {
		t.Fatalf("count %d, want %d", got, workers*perWorker)
	}
}

// TestObserveZeroAlloc is the hot-path allocation guard for the
// histogram core itself.
func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(137 * time.Microsecond) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per op, want 0", allocs)
	}
	tr := NewTrace(1, time.Now())
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Reset(2, time.Now())
		sp := tr.StartSpan("stage")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("span record allocates %.1f per op, want 0", allocs)
	}
}

// TestRegistryGetOrCreate: same (family, labels) returns the same
// instrument; distinct labels are distinct series under one family.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("x_seconds", `route="a"`, "help")
	b := r.Histogram("x_seconds", `route="b"`, "help")
	if a == b {
		t.Fatal("distinct labels returned the same series")
	}
	if again := r.Histogram("x_seconds", `route="a"`, "other"); again != a {
		t.Fatal("get-or-create returned a fresh series")
	}
	c := r.Counter("y_total", "help")
	if again := r.Counter("y_total", "help"); again != c {
		t.Fatal("counter get-or-create returned a fresh counter")
	}
}

// TestWritePrometheus checks the exposition: cumulative buckets, +Inf
// equal to _count, sum in seconds, labels spliced correctly.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", `route="fp"`, "Request latency.")
	for _, d := range []time.Duration{time.Microsecond, 10 * time.Microsecond, 10 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	ctr := r.Counter("ops_total", "Ops.")
	ctr.Add(5)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{route="fp",le="+Inf"} 4`,
		`req_seconds_count{route="fp"} 4`,
		"# TYPE ops_total counter",
		"ops_total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	var last float64 = -1
	var lastCum uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `req_seconds_bucket{route="fp",le="`) || strings.Contains(line, "+Inf") {
			continue
		}
		rest := strings.TrimPrefix(line, `req_seconds_bucket{route="fp",le="`)
		parts := strings.SplitN(rest, `"} `, 2)
		le, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		cum, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		if le <= last {
			t.Fatalf("le bounds not increasing at %q", line)
		}
		if cum < lastCum {
			t.Fatalf("cumulative counts decreasing at %q", line)
		}
		last, lastCum = le, cum
	}
	if lastCum != 4 {
		t.Fatalf("last cumulative bucket %d, want 4", lastCum)
	}
}

// TestInstrumentStats sanity-checks the cold-side summary.
func TestInstrumentStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("z_seconds", "", "Z.")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	stats := r.Instruments()
	if len(stats) != 1 {
		t.Fatalf("got %d instruments, want 1", len(stats))
	}
	st := stats[0]
	if st.Count != 100 {
		t.Fatalf("count %d, want 100", st.Count)
	}
	if p50 := time.Duration(st.P50); p50 < 40*time.Millisecond || p50 > 65*time.Millisecond {
		t.Fatalf("p50 %v outside [40ms, 65ms]", p50)
	}
	if st.P99 < st.P50 || st.P999 < st.P99 || st.Max < st.P999 {
		t.Fatalf("quantiles not monotone: %+v", st)
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(0)
		for pb.Next() {
			h.Observe(d)
			d += 997
		}
	})
}

func ExampleHistSnapshot_Quantile() {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	fmt.Println(s.Count(), time.Duration(s.Quantile(0.5)).Round(50*time.Microsecond))
	// Output: 1000 500µs
}
