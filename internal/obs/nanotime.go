package obs

import (
	_ "unsafe" // for go:linkname
)

// Now returns the runtime's monotonic clock in nanoseconds. It is the
// hot-path timestamp primitive: a single CLOCK_MONOTONIC read, roughly
// half the cost of time.Now (which also reads the wall clock), with no
// time.Time construction. Durations for Histogram.Observe are just
// Now() deltas.
//
// runtime.nanotime is on the linkname compatibility list the runtime
// maintains for exactly this use; the fallback if a future toolchain
// removes it is time.Since(start) at ~25ns more per sample.
//
//go:linkname Now runtime.nanotime
func Now() int64
