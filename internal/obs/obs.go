// Package obs is the zero-dependency observability core: lock-free,
// allocation-free latency histograms, a named-instrument registry with
// Prometheus text exposition, a lightweight span/trace facility with a
// ring buffer of recent slow traces, and a continuous pprof capture
// loop.
//
// The design splits hot from cold. The hot side — Histogram.Observe,
// Counter.Add, Span.End — is atomics only: no locks, no maps, no
// allocations, so it can sit inside the serving layer's 0-alloc read
// path and the write pipeline's per-record loop. The cold side —
// registration, snapshots, quantile interpolation, exposition — takes
// a mutex and allocates freely; it runs on /metrics scrapes and
// /debug/obs dumps, never per request.
//
// Instruments are process-global by convention: packages obtain them
// from Default at init or construction time with get-or-create
// semantics (the same (family, labels) pair always returns the same
// instrument), so two servers in one process — or a test constructing
// many — share cumulative series exactly like Prometheus client
// libraries behave.
//
// See docs/observability.md for the metric catalog, trace semantics
// and the operator runbook.
package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Registry holds named instruments and renders them for export.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu sync.Mutex
	// families preserves registration order for stable exposition.
	families []string
	hists    map[string][]*Histogram // family -> labeled series
	counters map[string]*Counter     // family -> counter (unlabeled)
	gauges   map[string]*Gauge       // family -> gauge (unlabeled)
	help     map[string]string
}

// Default is the process-wide registry every package-level instrument
// registers with. cmd binaries export it on /metrics and /debug/obs.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string][]*Histogram),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		help:     make(map[string]string),
	}
}

// Histogram returns the histogram series (family, labels), creating it
// on first use. family is the Prometheus metric name (by convention a
// *_seconds name; Observe records time.Durations); labels is the raw
// label-pair text spliced into the series, e.g. `route="frontpage"`,
// or "" for an unlabeled series. help is recorded on first
// registration of the family and ignored afterwards.
func (r *Registry) Histogram(family, labels, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hists[family] {
		if h.labels == labels {
			return h
		}
	}
	if _, seen := r.hists[family]; !seen {
		r.registerFamily(family, help)
	}
	h := &Histogram{family: family, labels: labels}
	r.hists[family] = append(r.hists[family], h)
	return h
}

// Counter returns the monotonic counter named family (by convention a
// *_total name), creating it on first use.
func (r *Registry) Counter(family, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[family]; ok {
		return c
	}
	r.registerFamily(family, help)
	c := &Counter{family: family}
	r.counters[family] = c
	return c
}

// Gauge returns the last-value gauge named family, creating it on
// first use. Gauges export with gauge TYPE and pass through the
// timeline raw (no delta), because their value may legitimately move
// in either direction or reset.
func (r *Registry) Gauge(family, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[family]; ok {
		return g
	}
	r.registerFamily(family, help)
	g := &Gauge{family: family}
	r.gauges[family] = g
	return g
}

// registerFamily records a new family's order and help. Caller holds mu.
func (r *Registry) registerFamily(family, help string) {
	r.families = append(r.families, family)
	r.help[family] = help
}

// WritePrometheus renders every instrument in the text exposition
// format (version 0.0.4): histograms as cumulative _bucket/_sum/_count
// series with `le` bounds in seconds, counters as plain counter
// samples. Only non-empty buckets are emitted (plus +Inf), which keeps
// the exposition proportional to the latency range actually observed
// while remaining a valid cumulative histogram.
func (r *Registry) WritePrometheus(b *bytes.Buffer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap HistSnapshot
	for _, family := range r.families {
		if c, ok := r.counters[family]; ok {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				family, r.help[family], family, family, c.Value())
			continue
		}
		if g, ok := r.gauges[family]; ok {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				family, r.help[family], family, family, g.Value())
			continue
		}
		series := r.hists[family]
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", family, r.help[family], family)
		for _, h := range series {
			h.Load(&snap)
			writePromHistogram(b, family, h.labels, &snap)
		}
	}
}

// writePromHistogram emits one labeled histogram series from a
// snapshot.
func writePromHistogram(b *bytes.Buffer, family, labels string, s *HistSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		_, upper := BucketBounds(i)
		b.WriteString(family)
		b.WriteString("_bucket{")
		if labels != "" {
			b.WriteString(labels)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(strconv.FormatFloat(float64(upper)/1e9, 'g', -1, 64))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	suffix := func(sfx string) {
		b.WriteString(family)
		b.WriteString(sfx)
		if labels != "" {
			b.WriteByte('{')
			b.WriteString(labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
	}
	b.WriteString(family)
	b.WriteString(`_bucket{`)
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
	suffix("_sum")
	b.WriteString(strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
	b.WriteByte('\n')
	suffix("_count")
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// InstrumentStat is a cold-side summary of one histogram series —
// what /debug/obs dumps and diggstats -obs tabulates.
type InstrumentStat struct {
	Name   string
	Labels string
	Count  uint64
	// Sum is the total observed time.
	Sum time.Duration
	// Quantiles are interpolated estimates in nanoseconds.
	P50, P90, P99, P999 float64
	// Max is the upper bound of the highest non-empty bucket (an upper
	// estimate of the largest observation).
	Max float64
}

// Instruments summarizes every histogram series, in registration order
// (series within a family sorted by labels for stability).
func (r *Registry) Instruments() []InstrumentStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []InstrumentStat
	var snap HistSnapshot
	for _, family := range r.families {
		series := append([]*Histogram(nil), r.hists[family]...)
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, h := range series {
			h.Load(&snap)
			out = append(out, InstrumentStat{
				Name:   family,
				Labels: h.labels,
				Count:  snap.Count(),
				Sum:    time.Duration(snap.Sum),
				P50:    snap.Quantile(0.50),
				P90:    snap.Quantile(0.90),
				P99:    snap.Quantile(0.99),
				P999:   snap.Quantile(0.999),
				Max:    snap.Max(),
			})
		}
	}
	return out
}

// Counter is a monotonically increasing counter. Add is one atomic
// add; the zero value is unusable — obtain from a Registry so the
// series is exported.
type Counter struct {
	family string
	v      paddedUint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value instrument: Set is one atomic store, cheap
// enough for per-write call sites. Obtain from a Registry.
type Gauge struct {
	family string
	v      paddedUint64
}

// Set records the current value.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() uint64 { return g.v.Load() }
