package obs

// timeline.go turns the registry's cumulative instruments into
// trends. A Timeline is a fixed-size ring of periodic registry
// snapshots (capture cadence is the caller's — cmd/diggd runs 1s with
// ~15min depth); everything derived from it — per-interval deltas,
// rates, interval quantiles, burn-rate windows — is computed on read
// from pairs of adjacent snapshots, so capture stays cheap and the
// hot instrument path is untouched (Capture only reads atomics under
// the registry mutex, exactly like a /metrics scrape).
//
// Snapshots store histograms sparsely (only non-zero cumulative
// buckets), so depth 900 costs a few MB even with every route series
// populated. Counter resets — a fresh data directory replacing an old
// one restarts the process, but a merged window may still straddle
// one in tests or future live-reload setups — are handled the
// Prometheus way: a decrease means the previous value no longer
// applies, and the delta restarts from zero.

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Timeline retains periodic snapshots of one registry and derives
// deltas, rates and burn windows from them.
type Timeline struct {
	reg      *Registry
	interval time.Duration // nominal capture cadence (metadata for consumers)

	mu    sync.Mutex
	depth int
	snaps []timelineSnap // ring; grows to depth then wraps
	next  int
	total uint64
}

// timelineSnap is one captured registry state.
type timelineSnap struct {
	at       time.Time
	counters map[string]uint64
	gauges   map[string]uint64
	hists    map[string]histPoint // key: family or family{labels}
}

// histPoint is one histogram series' cumulative state, stored
// sparsely: only non-zero buckets, ascending index.
type histPoint struct {
	sum     uint64
	buckets []sparseBucket
}

type sparseBucket struct {
	idx uint16
	n   uint64
}

// NewTimeline returns a timeline over reg retaining depth snapshots.
// interval is the cadence the caller intends to Capture at; it is
// recorded as metadata (Interval) and used nowhere else, so tests can
// Capture manually at any spacing.
func NewTimeline(reg *Registry, depth int, interval time.Duration) *Timeline {
	if depth < 2 {
		depth = 2
	}
	return &Timeline{reg: reg, interval: interval, depth: depth}
}

// Interval returns the nominal capture cadence.
func (tl *Timeline) Interval() time.Duration { return tl.interval }

// Depth returns the maximum number of retained snapshots.
func (tl *Timeline) Depth() int { return tl.depth }

// Len returns the number of snapshots currently retained.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.snaps)
}

// Capture appends one snapshot of the registry taken at now, evicting
// the oldest when the ring is full.
func (tl *Timeline) Capture(now time.Time) {
	snap := captureSnap(tl.reg, now)
	tl.mu.Lock()
	if len(tl.snaps) < tl.depth {
		tl.snaps = append(tl.snaps, snap)
		tl.next = len(tl.snaps) % tl.depth
	} else {
		tl.snaps[tl.next] = snap
		tl.next = (tl.next + 1) % tl.depth
	}
	tl.total++
	tl.mu.Unlock()
}

// Run captures at the timeline's nominal cadence until ctx is done.
func (tl *Timeline) Run(ctx context.Context) {
	t := time.NewTicker(tl.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			tl.Capture(now)
		}
	}
}

// captureSnap reads every instrument in reg under its mutex — the
// same cold-side discipline as a /metrics scrape.
func captureSnap(r *Registry, now time.Time) timelineSnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := timelineSnap{
		at:       now,
		counters: make(map[string]uint64, len(r.counters)),
		gauges:   make(map[string]uint64, len(r.gauges)),
		hists:    make(map[string]histPoint),
	}
	var hs HistSnapshot
	for _, family := range r.families {
		if c, ok := r.counters[family]; ok {
			s.counters[family] = c.Value()
			continue
		}
		if g, ok := r.gauges[family]; ok {
			s.gauges[family] = g.Value()
			continue
		}
		for _, h := range r.hists[family] {
			h.Load(&hs)
			s.hists[seriesKey(family, h.labels)] = compressHist(&hs)
		}
	}
	return s
}

func seriesKey(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// SplitSeriesKey undoes seriesKey: "fam{l}" -> ("fam", "l").
func SplitSeriesKey(key string) (family, labels string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			return key[:i], key[i+1 : len(key)-1]
		}
	}
	return key, ""
}

func compressHist(s *HistSnapshot) histPoint {
	p := histPoint{sum: s.Sum}
	for i, c := range s.Counts {
		if c != 0 {
			p.buckets = append(p.buckets, sparseBucket{idx: uint16(i), n: c})
		}
	}
	return p
}

// expand decompresses into dst (len numBuckets, caller-zeroed or
// overwritten fully here).
func (p histPoint) expand(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range p.buckets {
		dst[b.idx] = b.n
	}
}

// ordered returns the retained snapshots oldest-first. Caller holds mu.
func (tl *Timeline) ordered() []timelineSnap {
	out := make([]timelineSnap, 0, len(tl.snaps))
	if len(tl.snaps) < tl.depth {
		return append(out, tl.snaps...)
	}
	for i := 0; i < len(tl.snaps); i++ {
		out = append(out, tl.snaps[(tl.next+i)%len(tl.snaps)])
	}
	return out
}

// TimelineSeries is one instrument's derived trend.
type TimelineSeries struct {
	Name   string
	Labels string
	Kind   string // "counter", "gauge" or "histogram"
	Points []TimelinePoint
}

// TimelinePoint is one derived step: the change between two retained
// snapshots (gauges carry the raw value at the step's end instead).
type TimelinePoint struct {
	At       time.Time     // end of the step
	Interval time.Duration // actual covered wall time
	Value    uint64        // gauges: raw value at At
	Delta    uint64        // counters: value delta; histograms: count delta
	Rate     float64       // Delta per second over Interval
	P50, P99 float64       // histograms: interval quantiles, nanoseconds
	Sum      uint64        // histograms: observed nanoseconds in the step
}

// Dump derives every series' trend over the trailing window, merging
// adjacent capture deltas into steps of roughly the requested width
// (step <= the capture cadence means one point per captured
// interval). Series are sorted by key for stable output.
func (tl *Timeline) Dump(window, step time.Duration) []TimelineSeries {
	tl.mu.Lock()
	snaps := tl.ordered()
	tl.mu.Unlock()
	if len(snaps) < 2 {
		return nil
	}
	snaps = trimWindow(snaps, window)
	if len(snaps) < 2 {
		return nil
	}
	newest := snaps[len(snaps)-1]

	keys := make([]string, 0, len(newest.counters)+len(newest.gauges)+len(newest.hists))
	for k := range newest.counters {
		keys = append(keys, k)
	}
	for k := range newest.gauges {
		keys = append(keys, k)
	}
	for k := range newest.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	bounds := stepBounds(snaps, step)
	out := make([]TimelineSeries, 0, len(keys))
	for _, key := range keys {
		family, labels := SplitSeriesKey(key)
		ts := TimelineSeries{Name: family, Labels: labels}
		switch {
		case containsKey(newest.counters, key):
			ts.Kind = "counter"
			ts.Points = counterPoints(snaps, bounds, key)
		case containsKey(newest.gauges, key):
			ts.Kind = "gauge"
			ts.Points = gaugePoints(snaps, bounds, key)
		default:
			ts.Kind = "histogram"
			ts.Points = histSeriesPoints(snaps, bounds, key)
		}
		out = append(out, ts)
	}
	return out
}

func containsKey(m map[string]uint64, k string) bool {
	_, ok := m[k]
	return ok
}

// trimWindow drops snapshots older than window before the newest.
func trimWindow(snaps []timelineSnap, window time.Duration) []timelineSnap {
	if window <= 0 {
		return snaps
	}
	cutoff := snaps[len(snaps)-1].at.Add(-window)
	lo := 0
	for lo < len(snaps)-1 && snaps[lo].at.Before(cutoff) {
		lo++
	}
	return snaps[lo:]
}

// stepBounds groups the snapshot indices into steps: each step is the
// half-open index range (bounds[i], bounds[i+1]] whose deltas merge
// into one point. Steps are cut so each covers at least the requested
// width of wall time (the last may be shorter).
func stepBounds(snaps []timelineSnap, step time.Duration) []int {
	bounds := []int{0}
	last := 0
	for i := 1; i < len(snaps); i++ {
		if snaps[i].at.Sub(snaps[last].at) >= step || i == len(snaps)-1 {
			bounds = append(bounds, i)
			last = i
		}
	}
	return bounds
}

func counterPoints(snaps []timelineSnap, bounds []int, key string) []TimelinePoint {
	pts := make([]TimelinePoint, 0, len(bounds)-1)
	for b := 1; b < len(bounds); b++ {
		from, to := snaps[bounds[b-1]], snaps[bounds[b]]
		// Sum adjacent deltas so a mid-step counter reset loses only
		// the pre-reset interval, not the whole step.
		var delta uint64
		for i := bounds[b-1] + 1; i <= bounds[b]; i++ {
			delta += counterDelta(snaps[i-1].counters[key], snaps[i].counters[key])
		}
		pts = append(pts, makePoint(from.at, to.at, delta, 0))
	}
	return pts
}

// counterDelta applies Prometheus reset semantics: a decrease means
// the counter restarted and the delta restarts from the new value.
func counterDelta(prev, cur uint64) uint64 {
	if cur >= prev {
		return cur - prev
	}
	return cur
}

func gaugePoints(snaps []timelineSnap, bounds []int, key string) []TimelinePoint {
	pts := make([]TimelinePoint, 0, len(bounds)-1)
	for b := 1; b < len(bounds); b++ {
		from, to := snaps[bounds[b-1]], snaps[bounds[b]]
		pts = append(pts, TimelinePoint{
			At:       to.at,
			Interval: to.at.Sub(from.at),
			Value:    to.gauges[key],
		})
	}
	return pts
}

func histSeriesPoints(snaps []timelineSnap, bounds []int, key string) []TimelinePoint {
	pts := make([]TimelinePoint, 0, len(bounds)-1)
	prev := make([]uint64, numBuckets)
	cur := make([]uint64, numBuckets)
	var merged HistSnapshot
	var delta HistSnapshot
	for b := 1; b < len(bounds); b++ {
		from, to := snaps[bounds[b-1]], snaps[bounds[b]]
		for i := range merged.Counts {
			merged.Counts[i] = 0
		}
		merged.Sum = 0
		// Merge the step's adjacent capture deltas (associative, so a
		// 10s point is exactly the union of its 1s deltas).
		for i := bounds[b-1] + 1; i <= bounds[b]; i++ {
			histDelta(snaps[i-1].hists[key], snaps[i].hists[key], prev, cur, &delta)
			merged.Merge(&delta)
		}
		count := merged.Count()
		p := makePoint(from.at, to.at, count, merged.Sum)
		if count > 0 {
			p.P50 = merged.Quantile(0.50)
			p.P99 = merged.Quantile(0.99)
		}
		pts = append(pts, p)
	}
	return pts
}

func makePoint(from, to time.Time, delta, sum uint64) TimelinePoint {
	p := TimelinePoint{At: to, Interval: to.Sub(from), Delta: delta, Sum: sum}
	if secs := p.Interval.Seconds(); secs > 0 {
		p.Rate = float64(delta) / secs
	}
	return p
}

// histDelta computes cur-prev bucket-wise into out. Any bucket
// decrease means the series reset (process restart, fresh registry):
// the delta restarts from the current cumulative state.
func histDelta(prevP, curP histPoint, prevBuf, curBuf []uint64, out *HistSnapshot) {
	prevP.expand(prevBuf)
	curP.expand(curBuf)
	if cap(out.Counts) < numBuckets {
		out.Counts = make([]uint64, numBuckets)
	}
	out.Counts = out.Counts[:numBuckets]
	reset := curP.sum < prevP.sum
	if !reset {
		for i := range curBuf {
			if curBuf[i] < prevBuf[i] {
				reset = true
				break
			}
		}
	}
	if reset {
		copy(out.Counts, curBuf)
		out.Sum = curP.sum
		return
	}
	for i := range curBuf {
		out.Counts[i] = curBuf[i] - prevBuf[i]
	}
	out.Sum = curP.sum - prevP.sum
}

// WindowDelta merges every series of family into one histogram delta
// over the trailing window. covered is the wall time the delta
// actually spans (shorter than window while the ring is still
// filling). ok is false when fewer than two snapshots exist.
func (tl *Timeline) WindowDelta(family string, window time.Duration) (delta HistSnapshot, covered time.Duration, ok bool) {
	tl.mu.Lock()
	snaps := tl.ordered()
	tl.mu.Unlock()
	if len(snaps) < 2 {
		return HistSnapshot{}, 0, false
	}
	snaps = trimWindow(snaps, window)
	if len(snaps) < 2 {
		return HistSnapshot{}, 0, false
	}
	prev := make([]uint64, numBuckets)
	cur := make([]uint64, numBuckets)
	var d HistSnapshot
	for key := range snaps[len(snaps)-1].hists {
		fam, _ := SplitSeriesKey(key)
		if fam != family {
			continue
		}
		for i := 1; i < len(snaps); i++ {
			histDelta(snaps[i-1].hists[key], snaps[i].hists[key], prev, cur, &d)
			delta.Merge(&d)
		}
	}
	return delta, snaps[len(snaps)-1].at.Sub(snaps[0].at), true
}
