package obs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCaptureProfiles(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- CaptureProfiles(ctx, dir, ProfilerOptions{
			Period: 50 * time.Millisecond,
			Keep:   2,
			Logf:   t.Logf,
		})
	}()
	// Let a few windows rotate, then stop.
	time.Sleep(220 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("CaptureProfiles: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CaptureProfiles did not stop after cancel")
	}

	cpu, heap := 0, 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "cpu-") && strings.HasSuffix(e.Name(), ".pprof"):
			cpu++
		case strings.HasPrefix(e.Name(), "heap-") && strings.HasSuffix(e.Name(), ".pprof"):
			heap++
		default:
			t.Errorf("unexpected file %s", e.Name())
		}
	}
	if cpu == 0 || heap == 0 {
		t.Fatalf("got %d cpu / %d heap profiles, want at least one of each", cpu, heap)
	}
	if cpu > 2 || heap > 2 {
		t.Fatalf("pruning kept %d cpu / %d heap profiles, want <= 2 each", cpu, heap)
	}
	// Profiles must be non-empty files.
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", e.Name())
		}
	}
}

func TestPruneProfiles(t *testing.T) {
	dir := t.TempDir()
	names := []string{"cpu-1.pprof", "cpu-2.pprof", "cpu-3.pprof", "heap-1.pprof"}
	for _, n := range names {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := pruneProfiles(dir, "cpu-", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu-1.pprof")); !os.IsNotExist(err) {
		t.Fatal("oldest cpu profile not pruned")
	}
	for _, n := range []string{"cpu-2.pprof", "cpu-3.pprof", "heap-1.pprof"} {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
