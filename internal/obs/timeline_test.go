package obs

import (
	"testing"
	"time"
)

// tick returns a fixed base instant plus n seconds, so timeline tests
// control wall spacing exactly.
func tick(n int) time.Time {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(n) * time.Second)
}

func findSeries(t *testing.T, dump []TimelineSeries, name, labels string) TimelineSeries {
	t.Helper()
	for _, s := range dump {
		if s.Name == name && s.Labels == labels {
			return s
		}
	}
	t.Fatalf("series %s{%s} not in dump (%d series)", name, labels, len(dump))
	return TimelineSeries{}
}

func TestTimelineCounterDeltaAndRate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "test")
	tl := NewTimeline(reg, 16, time.Second)

	tl.Capture(tick(0))
	c.Add(10)
	tl.Capture(tick(1))
	c.Add(30)
	tl.Capture(tick(2))

	s := findSeries(t, tl.Dump(time.Minute, time.Second), "requests_total", "")
	if s.Kind != "counter" {
		t.Fatalf("kind = %q, want counter", s.Kind)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.Points))
	}
	if s.Points[0].Delta != 10 || s.Points[1].Delta != 30 {
		t.Fatalf("deltas = %d,%d want 10,30", s.Points[0].Delta, s.Points[1].Delta)
	}
	if s.Points[1].Rate != 30 {
		t.Fatalf("rate = %v, want 30/s", s.Points[1].Rate)
	}
}

func TestTimelineCounterReset(t *testing.T) {
	// Two registries sharing one timeline is the test stand-in for a
	// counter restarting: capture high, then capture a fresh low value.
	reg := NewRegistry()
	c := reg.Counter("requests_total", "test")
	tl := NewTimeline(reg, 16, time.Second)

	c.Add(100)
	tl.Capture(tick(0))
	// Simulate a reset by swapping in a fresh registry state: the
	// timeline only sees values, so overwrite via a new counter.
	tl.reg = NewRegistry()
	c2 := tl.reg.Counter("requests_total", "test")
	c2.Add(7)
	tl.Capture(tick(1))

	s := findSeries(t, tl.Dump(time.Minute, time.Second), "requests_total", "")
	// 7 < 100: Prometheus reset semantics — the delta restarts from
	// the post-reset value, never underflows.
	if got := s.Points[0].Delta; got != 7 {
		t.Fatalf("post-reset delta = %d, want 7", got)
	}
}

func TestTimelineGaugePassthrough(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("view_generation", "test")
	tl := NewTimeline(reg, 16, time.Second)

	g.Set(42)
	tl.Capture(tick(0))
	g.Set(17) // gauges may go down; no delta, no reset semantics
	tl.Capture(tick(1))
	g.Set(99)
	tl.Capture(tick(2))

	s := findSeries(t, tl.Dump(time.Minute, time.Second), "view_generation", "")
	if s.Kind != "gauge" {
		t.Fatalf("kind = %q, want gauge", s.Kind)
	}
	if s.Points[0].Value != 17 || s.Points[1].Value != 99 {
		t.Fatalf("values = %d,%d want 17,99", s.Points[0].Value, s.Points[1].Value)
	}
	if s.Points[0].Delta != 0 || s.Points[0].Rate != 0 {
		t.Fatalf("gauge points must not carry delta/rate: %+v", s.Points[0])
	}
}

func TestTimelineHistogramDeltaAndStepMerge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", `route="x"`, "test")
	tl := NewTimeline(reg, 64, time.Second)

	tl.Capture(tick(0))
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	tl.Capture(tick(1))
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	tl.Capture(tick(2))

	// step = capture cadence: two points, each its own distribution.
	fine := findSeries(t, tl.Dump(time.Minute, time.Second), "lat_seconds", `route="x"`)
	if len(fine.Points) != 2 {
		t.Fatalf("fine points = %d, want 2", len(fine.Points))
	}
	if fine.Points[0].Delta != 10 || fine.Points[1].Delta != 10 {
		t.Fatalf("fine deltas = %d,%d want 10,10", fine.Points[0].Delta, fine.Points[1].Delta)
	}
	if p50 := fine.Points[0].P50; p50 < 0.75e6 || p50 > 1.25e6 {
		t.Fatalf("first interval p50 = %vns, want ~1ms", p50)
	}
	if p50 := fine.Points[1].P50; p50 < 75e6 || p50 > 125e6 {
		t.Fatalf("second interval p50 = %vns, want ~100ms", p50)
	}

	// step = 2s: the two interval deltas merge into one point whose
	// distribution is exactly their union (merge associativity).
	coarse := findSeries(t, tl.Dump(time.Minute, 2*time.Second), "lat_seconds", `route="x"`)
	if len(coarse.Points) != 1 {
		t.Fatalf("coarse points = %d, want 1", len(coarse.Points))
	}
	p := coarse.Points[0]
	if p.Delta != 20 {
		t.Fatalf("merged delta = %d, want 20", p.Delta)
	}
	// Half the merged observations are 1ms and half 100ms, so p99
	// sits in the 100ms region and p50 at the boundary or below.
	if p.P99 < 75e6 {
		t.Fatalf("merged p99 = %vns, want ~100ms", p.P99)
	}
	if p.Interval != 2*time.Second {
		t.Fatalf("merged interval = %v, want 2s", p.Interval)
	}
	wantSum := fine.Points[0].Sum + fine.Points[1].Sum
	if p.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", p.Sum, wantSum)
	}
}

func TestTimelineHistogramReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "", "test")
	tl := NewTimeline(reg, 16, time.Second)

	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	tl.Capture(tick(0))
	tl.reg = NewRegistry()
	h2 := tl.reg.Histogram("lat_seconds", "", "test")
	for i := 0; i < 3; i++ {
		h2.Observe(time.Millisecond)
	}
	tl.Capture(tick(1))

	s := findSeries(t, tl.Dump(time.Minute, time.Second), "lat_seconds", "")
	if got := s.Points[0].Delta; got != 3 {
		t.Fatalf("post-reset hist delta = %d, want 3", got)
	}
}

func TestTimelineRingEviction(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "test")
	tl := NewTimeline(reg, 4, time.Second)
	for i := 0; i < 10; i++ {
		c.Add(1)
		tl.Capture(tick(i))
	}
	if tl.Len() != 4 {
		t.Fatalf("len = %d, want depth 4", tl.Len())
	}
	s := findSeries(t, tl.Dump(time.Hour, time.Second), "n_total", "")
	// Only the newest 4 snapshots remain: 3 deltas, newest at tick(9).
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if !s.Points[2].At.Equal(tick(9)) {
		t.Fatalf("newest point at %v, want %v", s.Points[2].At, tick(9))
	}
}

func TestTimelineWindowTrim(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "test")
	tl := NewTimeline(reg, 64, time.Second)
	for i := 0; i < 20; i++ {
		c.Add(1)
		tl.Capture(tick(i))
	}
	s := findSeries(t, tl.Dump(5*time.Second, time.Second), "n_total", "")
	if len(s.Points) != 5 {
		t.Fatalf("windowed points = %d, want 5", len(s.Points))
	}
}

func TestBurnRateDegradedAndRecovery(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("fresh_seconds", `source="http"`, "test")
	tl := NewTimeline(reg, 4096, time.Second)
	slos := []SLO{{Name: "fresh", Family: "fresh_seconds", Objective: 0.99, Threshold: 100 * time.Millisecond}}
	cfg := BurnConfig{Short: 10 * time.Second, Long: 40 * time.Second, Factor: 14.4}

	// Healthy traffic: everything under threshold.
	n := 0
	for ; n < 30; n++ {
		for i := 0; i < 100; i++ {
			h.Observe(time.Millisecond)
		}
		tl.Capture(tick(n))
	}
	st := tl.EvaluateBurn(slos, cfg)[0]
	if st.Degraded || st.Short.Burn != 0 {
		t.Fatalf("healthy burn: %+v", st)
	}

	// Regression: half the observations blow the threshold. Bad
	// fraction 0.5 against a 1% budget = burn 50 in both windows.
	for end := n + 40; n < end; n++ {
		for i := 0; i < 50; i++ {
			h.Observe(time.Millisecond)
			h.Observe(time.Second)
		}
		tl.Capture(tick(n))
	}
	st = tl.EvaluateBurn(slos, cfg)[0]
	if !st.Degraded {
		t.Fatalf("regression not degraded: short %+v long %+v", st.Short, st.Long)
	}
	if st.Short.Burn < 40 || st.Short.Burn > 60 {
		t.Fatalf("short burn = %v, want ~50", st.Short.Burn)
	}

	// Recovery: the short window drains first and degraded clears even
	// while the long window still remembers the incident.
	for end := n + 15; n < end; n++ {
		for i := 0; i < 100; i++ {
			h.Observe(time.Millisecond)
		}
		tl.Capture(tick(n))
	}
	st = tl.EvaluateBurn(slos, cfg)[0]
	if st.Degraded {
		t.Fatalf("still degraded after recovery: short %+v long %+v", st.Short, st.Long)
	}
	if st.Short.Burn >= 14.4 {
		t.Fatalf("short window did not drain: %+v", st.Short)
	}
	if st.Long.Burn == 0 {
		t.Fatalf("long window forgot the incident too fast: %+v", st.Long)
	}
}

func TestBurnZeroTraffic(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("fresh_seconds", "", "test")
	tl := NewTimeline(reg, 16, time.Second)
	for i := 0; i < 5; i++ {
		tl.Capture(tick(i))
	}
	st := tl.EvaluateBurn([]SLO{{Name: "fresh", Family: "fresh_seconds", Objective: 0.99, Threshold: time.Millisecond}}, BurnConfig{})[0]
	if st.Degraded || st.Short.Burn != 0 || st.Long.Burn != 0 {
		t.Fatalf("zero traffic must not burn: %+v", st)
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, ok := ParseTraceID(TraceIDString(id))
	if !ok || got != id {
		t.Fatalf("round trip: got %x ok=%v, want %x", got, ok, id)
	}
	for _, bad := range []string{"", "abc", "ABCDEF0123456789", "0123456789abcdeg", "0123456789abcdef0"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted", bad)
		}
	}
}
