package obs

// The freshness families measure write→visibility end to end — the
// system-level analogue of the paper's attention-propagation speed.
// Family names live here so every recording layer (httpapi, live,
// repl, the diggload client probe) spells the same series; each layer
// registers its own labeled series with its registry. All are
// histograms in seconds on /metrics, milliseconds on /debug/obs. See
// docs/observability.md for the exact span each one covers.
const (
	// FreshnessFrontpageFamily: write accepted → republished snapshot
	// readable (source="http" for external writes, "step" for the live
	// simulation tick, "client" for diggload's end-to-end probe).
	FreshnessFrontpageFamily = "diggsim_freshness_write_to_frontpage_visible_seconds"
	// FreshnessSSEFamily: bus publish → event bytes flushed to an SSE
	// subscriber's connection.
	FreshnessSSEFamily = "diggsim_freshness_publish_to_sse_delivered_seconds"
	// FreshnessFollowerFamily: primary WAL commit → follower applied
	// and republished (cross-process: commit wall-clock timestamps ride
	// replication heartbeats, so skew between hosts shifts this series
	// exactly like diggsim_repl_lag_seconds).
	FreshnessFollowerFamily = "diggsim_freshness_commit_to_follower_visible_seconds"
)
