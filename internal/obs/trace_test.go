package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceIDString(t *testing.T) {
	if got := TraceIDString(0); got != "0000000000000000" {
		t.Fatalf("TraceIDString(0) = %q", got)
	}
	if got := TraceIDString(0xdeadbeefcafe0123); got != "deadbeefcafe0123" {
		t.Fatalf("TraceIDString = %q", got)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID after %d mints", i)
		}
		seen[id] = true
	}
}

func TestTraceSpans(t *testing.T) {
	start := time.Now()
	tr := NewTrace(42, start)
	sp := tr.StartSpan("decode")
	sp.End()
	tr.StartSpan("apply").End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "decode" || spans[1].Name != "apply" {
		t.Fatalf("span names %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Offset < 0 || spans[0].Dur < 0 {
		t.Fatalf("negative offset/duration: %+v", spans[0])
	}

	// Capacity cap: excess spans drop silently, no growth.
	tr.Reset(43, time.Now())
	for i := 0; i < traceSpanCap+10; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != traceSpanCap {
		t.Fatalf("got %d spans, want cap %d", got, traceSpanCap)
	}
}

func TestSpanFromContext(t *testing.T) {
	// No trace attached: zero span, End is a no-op.
	SpanFrom(context.Background(), "orphan").End()

	tr := NewTrace(7, time.Now())
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the attached trace")
	}
	SpanFrom(ctx, "stage").End()
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Name != "stage" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(TraceEntry{ID: fmt.Sprintf("t%d", i)})
	}
	if got := r.Total(); got != 5 {
		t.Fatalf("total %d, want 5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", i, snap[i].ID, want)
		}
	}

	// Partially filled ring still reports newest first.
	r2 := NewTraceRing(8)
	r2.Add(TraceEntry{ID: "a"})
	r2.Add(TraceEntry{ID: "b"})
	snap2 := r2.Snapshot()
	if len(snap2) != 2 || snap2[0].ID != "b" || snap2[1].ID != "a" {
		t.Fatalf("snapshot = %+v", snap2)
	}
}

// TestTraceRingConcurrent hammers the slow-trace ring with concurrent
// recorders and snapshotters — the -race regression gate for the
// add/evict locking. Every snapshot must be internally consistent:
// never more than cap entries, each fully formed (no torn writes).
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(TraceEntry{
					ID:       TraceIDString(NewTraceID()),
					Method:   "GET",
					Path:     "/v1/frontpage",
					Status:   200,
					Duration: time.Duration(i) * time.Microsecond,
					Spans:    []SpanRec{{Name: "apply", Dur: time.Microsecond}},
				})
			}
		}()
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap) > 16 {
					t.Errorf("snapshot retained %d > cap 16", len(snap))
					return
				}
				for _, e := range snap {
					if len(e.ID) != 16 || e.Method != "GET" || len(e.Spans) != 1 {
						t.Errorf("torn entry retained: %+v", e)
						return
					}
				}
				r.Total()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Fatalf("retained = %d, want 16", got)
	}
}
