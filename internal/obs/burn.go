package obs

// burn.go is the multi-window SLO burn-rate evaluator over a
// Timeline. An SLO says "objective of observations in family stay
// under threshold"; the error budget is 1-objective. The burn rate of
// a window is (bad fraction in the window) / (error budget): burn 1.0
// consumes the budget exactly at the sustainable rate, burn 14.4 over
// 5 minutes is the classic page-worthy signal (2% of a 30-day budget
// in an hour). Requiring BOTH a short and a long window to burn
// filters blips: the short window arms fast, the long window proves
// it is sustained — and makes the signal reset quickly once the
// regression stops feeding the short window.
//
// Bad counts come from bucket deltas: a bucket counts as bad when its
// lower bound is at or above the threshold, so an estimate never
// blames the straddling bucket (<= 25% optimistic at the boundary,
// consistent with the histogram's relative-error contract). Zero
// traffic burns nothing.

import "time"

// SLO is one latency objective over a histogram family: Objective of
// observations should complete under Threshold.
type SLO struct {
	Name      string        // short stable identifier, e.g. "frontpage_freshness"
	Family    string        // histogram family; all labeled series merge
	Objective float64       // e.g. 0.99
	Threshold time.Duration // good when below
}

// BurnConfig sets the evaluation windows and the degrade factor.
type BurnConfig struct {
	Short  time.Duration // default 5m
	Long   time.Duration // default 1h (clamped to timeline depth)
	Factor float64       // default 14.4; degraded when both windows burn at or above it
}

// DefaultBurnConfig is the classic fast-burn pair.
var DefaultBurnConfig = BurnConfig{Short: 5 * time.Minute, Long: time.Hour, Factor: 14.4}

func (c BurnConfig) withDefaults() BurnConfig {
	d := DefaultBurnConfig
	if c.Short > 0 {
		d.Short = c.Short
	}
	if c.Long > 0 {
		d.Long = c.Long
	}
	if c.Factor > 0 {
		d.Factor = c.Factor
	}
	return d
}

// BurnWindow is one window's measurement.
type BurnWindow struct {
	Window  time.Duration // requested width
	Covered time.Duration // wall time actually spanned by retained snapshots
	Total   uint64        // observations in the window
	Bad     uint64        // observations at or above the threshold
	Burn    float64       // bad fraction / error budget
}

// BurnStatus is one SLO's evaluation.
type BurnStatus struct {
	SLO      SLO
	Short    BurnWindow
	Long     BurnWindow
	Degraded bool
}

// EvaluateBurn measures every SLO against the timeline.
func (tl *Timeline) EvaluateBurn(slos []SLO, cfg BurnConfig) []BurnStatus {
	cfg = cfg.withDefaults()
	out := make([]BurnStatus, 0, len(slos))
	for _, slo := range slos {
		st := BurnStatus{
			SLO:   slo,
			Short: tl.burnWindow(slo, cfg.Short),
			Long:  tl.burnWindow(slo, cfg.Long),
		}
		st.Degraded = st.Short.Burn >= cfg.Factor && st.Long.Burn >= cfg.Factor
		out = append(out, st)
	}
	return out
}

func (tl *Timeline) burnWindow(slo SLO, window time.Duration) BurnWindow {
	w := BurnWindow{Window: window}
	delta, covered, ok := tl.WindowDelta(slo.Family, window)
	if !ok {
		return w
	}
	w.Covered = covered
	w.Total = delta.Count()
	w.Bad = countAtOrAbove(&delta, slo.Threshold)
	if budget := 1 - slo.Objective; w.Total > 0 && budget > 0 {
		w.Burn = (float64(w.Bad) / float64(w.Total)) / budget
	}
	return w
}

// countAtOrAbove sums buckets whose lower bound is >= threshold.
func countAtOrAbove(s *HistSnapshot, threshold time.Duration) uint64 {
	t := uint64(0)
	if threshold > 0 {
		t = uint64(threshold)
	}
	var bad uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if lower, _ := BucketBounds(i); lower >= t {
			bad += c
		}
	}
	return bad
}
