package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): each power-of-two octave is
// split into subCount linear sub-buckets, so bucket bounds grow by a
// factor between 1.125 and 1.25 — the "power-of-~1.25" scheme — and
// the relative quantile error is bounded by 1/subCount = 25% worst
// case (half that on average). Bucket index is pure bit math: leading
// bit position selects the octave, the next subBits bits select the
// sub-bucket. Values are durations in nanoseconds.
const (
	subBits  = 2
	subCount = 1 << subBits // sub-buckets per octave

	// numBuckets covers every uint64 nanosecond value: values below
	// subCount get width-1 buckets, then (63 - subBits + 1) octaves of
	// subCount buckets each. Index for the top octave (k = 63) is
	// (63-subBits)*subCount + (subCount-1) + subCount = 251.
	numBuckets = (63-subBits+1)*subCount + subCount
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(v) - 1 // octave: v in [2^k, 2^(k+1))
	sub := int((v >> uint(k-subBits)) & (subCount - 1))
	return (k-subBits)*subCount + sub + subCount
}

// BucketBounds returns bucket i's half-open value range [lower, upper)
// in nanoseconds.
func BucketBounds(i int) (lower, upper uint64) {
	if i < subCount {
		return uint64(i), uint64(i) + 1
	}
	k := subBits + (i-subCount)/subCount
	sub := uint64((i - subCount) % subCount)
	width := uint64(1) << uint(k-subBits)
	lower = 1<<uint(k) + sub*width
	return lower, lower + width
}

// paddedUint64 is an atomic counter padded to its own cache line so
// hot instruments touched from many cores don't false-share.
type paddedUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// Histogram is a lock-free, allocation-free latency histogram: an
// array of atomic bucket counters plus an atomic nanosecond sum.
// Observe is two uncontended atomic adds and never allocates, so it
// is safe on the 0-alloc serving path. All read-side computation
// (count, quantiles, exposition) happens on snapshots.
//
// Obtain instances from a Registry; the zero value records but is
// never exported.
type Histogram struct {
	family string
	labels string
	sum    paddedUint64
	counts [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.family }

// Labels returns the series' label-pair text ("" when unlabeled).
func (h *Histogram) Labels() string { return h.labels }

// HistSnapshot is a point-in-time copy of a histogram, mergeable with
// others recorded in the same bucket layout.
type HistSnapshot struct {
	Counts []uint64
	Sum    uint64 // total observed nanoseconds
}

// Load copies the histogram's current state into s, reusing s.Counts
// when already sized. Concurrent Observe calls may land between bucket
// reads; each bucket is individually exact and the snapshot is a valid
// histogram of a set of observations that all happened.
func (h *Histogram) Load(s *HistSnapshot) {
	if cap(s.Counts) < numBuckets {
		s.Counts = make([]uint64, numBuckets)
	}
	s.Counts = s.Counts[:numBuckets]
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
}

// Snapshot returns a fresh snapshot of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	h.Load(&s)
	return s
}

// Count returns the total number of observations.
func (s *HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge folds o into s bucket-by-bucket. Merging is associative and
// commutative, so per-shard or per-process snapshots can be combined
// in any order and quantiles computed once over the union.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if cap(s.Counts) < numBuckets {
		grown := make([]uint64, numBuckets)
		copy(grown, s.Counts)
		s.Counts = grown
	}
	s.Counts = s.Counts[:numBuckets]
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
}

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds,
// linearly interpolated within the bucket containing the target rank.
// The estimate always lies inside that bucket's bounds, so its
// relative error is bounded by the bucket width (<= 25%, typically
// ~12%). Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Target rank in [1, total]: the ceil makes q=0 the minimum
	// observation's bucket and q=1 the maximum's.
	target := uint64(q * float64(total))
	if float64(target) < q*float64(total) || target == 0 {
		target++
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lower, upper := BucketBounds(i)
			// Position of the target rank within this bucket.
			frac := (float64(target) - float64(cum) - 0.5) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return float64(lower) + frac*float64(upper-lower)
		}
		cum += c
	}
	return 0
}

// Max returns the upper bound of the highest non-empty bucket — an
// upper estimate of the largest observation. Returns 0 when empty.
func (s *HistSnapshot) Max() float64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			_, upper := BucketBounds(i)
			return float64(upper)
		}
	}
	return 0
}
