package diggsim

// integration_test.go exercises the full reproduction pipeline across
// module boundaries: generate -> serve over HTTP -> scrape -> persist ->
// reload -> analyze -> train -> predict. Unit tests live next to each
// package; these tests assert the pieces compose.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"diggsim/internal/cascade"
	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/httpapi"
	"diggsim/internal/mltree"
	"diggsim/internal/rng"
)

func generateSmall(t *testing.T, submissions int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SmallConfig()
	cfg.Submissions = submissions
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestPipelineGenerateTrainPredict is the in-process path: corpus ->
// features -> classifier -> holdout, the paper's §5 workflow.
func TestPipelineGenerateTrainPredict(t *testing.T) {
	ds := generateSmall(t, 400)
	examples := core.ExtractAll(ds.Graph, ds.FrontPage)
	if len(examples) < 20 {
		t.Fatalf("front-page sample too small: %d", len(examples))
	}
	p, err := core.Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cv, err := core.CrossValidate(examples, nil, mltree.DefaultConfig(), 10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Accuracy() < 0.6 {
		t.Errorf("cross-validated accuracy = %.3f (paper: 0.84)", cv.Accuracy())
	}
	h := core.EvaluateHoldout(ds.Graph, ds.UpcomingAtSnapshot, ds.RankOf, p,
		core.DefaultHoldoutConfig(ds.Config.SnapshotAt))
	if h.Kept > 0 && h.Confusion.Total() != h.Kept {
		t.Errorf("holdout bookkeeping: kept=%d confusion=%d", h.Kept, h.Confusion.Total())
	}
}

// TestPipelineScrapeRoundTrip is the over-the-wire path: the scraped
// and reloaded dataset must support the same analysis as the original,
// with identical in-network structure for the sampled stories.
func TestPipelineScrapeRoundTrip(t *testing.T) {
	ds := generateSmall(t, 200)
	srv := httpapi.NewServer(ds.Platform, ds.Config.SnapshotAt, ds.RankOf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	client := httpapi.NewClient(ts.URL)
	scraped, err := httpapi.Scrape(ctx, client, httpapi.ScrapeConfig{
		FrontPageLimit: 50, UpcomingLimit: 200, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scraped.Stories) == 0 {
		t.Fatal("scrape returned no stories")
	}

	// Persist + reload.
	dir := filepath.Join(t.TempDir(), "scrape")
	if err := scraped.Save(dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := dataset.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Stories) != len(scraped.Stories) {
		t.Fatalf("reload lost stories: %d vs %d", len(reloaded.Stories), len(scraped.Stories))
	}

	// The offline in-network analysis over the scraped graph must match
	// the original platform's stored flags for every scraped story.
	origByID := map[int]*struct{ flags []bool }{}
	for _, s := range ds.Stories {
		flags := make([]bool, 0, len(s.Votes))
		for _, v := range s.Votes[1:] {
			flags = append(flags, v.InNetwork)
		}
		origByID[int(s.ID)] = &struct{ flags []bool }{flags}
	}
	checked := 0
	for _, s := range reloaded.Stories {
		orig, ok := origByID[int(s.ID)]
		if !ok {
			t.Fatalf("scraped story %d not in original corpus", s.ID)
		}
		flags := cascade.InNetworkFlags(reloaded.Graph, cascade.Voters(s))
		if len(flags) != len(orig.flags) {
			t.Fatalf("story %d: %d flags vs %d votes", s.ID, len(flags), len(orig.flags))
		}
		for i := range flags {
			if flags[i] != orig.flags[i] {
				t.Fatalf("story %d vote %d: scraped-graph analysis %v != platform %v",
					s.ID, i+1, flags[i], orig.flags[i])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}

	// And the classifier trained on the scraped data still works.
	examples := core.ExtractAll(reloaded.Graph, reloaded.FrontPage)
	if len(examples) < 10 {
		t.Skipf("scraped front-page sample too small: %d", len(examples))
	}
	if _, err := core.Train(examples, nil, mltree.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestDatasetStatisticalShape asserts the corpus-level calibration
// invariants every experiment depends on, on a fresh corpus (separate
// seed from the shared test corpora).
func TestDatasetStatisticalShape(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Seed = 7777
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	promoted, upcoming := 0, 0
	for _, s := range ds.Stories {
		if s.Promoted {
			promoted++
			if s.VoteCount() < 43 {
				t.Errorf("promoted story %d below 43 votes", s.ID)
			}
		} else {
			upcoming++
			if s.VoteCount() > 42 {
				t.Errorf("upcoming story %d above 42 votes", s.ID)
			}
		}
	}
	if promoted == 0 || upcoming == 0 {
		t.Fatalf("degenerate corpus: %d promoted, %d upcoming", promoted, upcoming)
	}
	// The inverse early-vote signal must hold on a fresh seed too.
	var lowBand, highBand []float64
	for _, s := range ds.FrontPage {
		st := cascade.Analyze(ds.Graph, s)
		switch {
		case st.InNet10 <= 2:
			lowBand = append(lowBand, float64(st.FinalVotes))
		case st.InNet10 >= 8:
			highBand = append(highBand, float64(st.FinalVotes))
		}
	}
	if len(lowBand) >= 3 && len(highBand) >= 3 {
		if mean(lowBand) <= mean(highBand) {
			t.Errorf("inverse relation failed on fresh seed: low=%.0f high=%.0f",
				mean(lowBand), mean(highBand))
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
