// Package diggsim is a full reproduction of Lerman & Galstyan, "Analysis
// of Social Voting Patterns on Digg" (WOSN/SIGCOMM 2008): a simulated
// Digg platform, a two-mechanism interest-spread model, cascade
// analysis, a C4.5 interestingness predictor, an HTTP scrape pipeline,
// and a harness regenerating every table and figure of the paper.
//
// See README.md for the package map, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate one experiment
// per paper artifact; run them with:
//
//	go test -bench=. -benchmem
package diggsim
