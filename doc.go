// Package diggsim is a full reproduction of Lerman & Galstyan, "Analysis
// of Social Voting Patterns on Digg" (WOSN/SIGCOMM 2008): a simulated
// Digg platform, a two-mechanism interest-spread model, cascade
// analysis, a C4.5 interestingness predictor, an HTTP scrape pipeline,
// and a harness regenerating every table and figure of the paper.
//
// Corpus generation — the substrate behind every experiment — runs on
// an event-driven scheduler (internal/agent): instead of stepping each
// story minute-by-minute over a multi-day horizon, the simulator jumps
// between pending Friends-interface exposures (a minute-bucketed timing
// wheel) and interest-based discovery votes (sampled exponential
// inter-arrival gaps, thinned against the decaying novelty rate), with
// per-story voter and audience sets held in epoch-stamped dense buffers
// reused across stories. Stories are statistically independent given
// the graph, so internal/dataset fans them out across a worker pool;
// each story draws from a random substream keyed by (Seed, story
// index), which makes the corpus bit-identical for every worker count —
// determinism is the API contract, parallelism is just scheduling (see
// Config.Workers and the -workers flag on cmd/diggsim and
// cmd/experiments).
//
// The platform also runs as a live service (internal/live): cmd/diggd
// -live maps wall-clock time to simulation minutes at a configurable
// speedup, keeps submitting stories as a Poisson process over the
// calibrated submitter mix, and steps every live story's pending votes
// through the same event engine (agent.Stepper) while the HTTP API
// serves concurrent readers — so scrapes race a genuinely evolving
// site, the situation the paper's crawler actually faced. Typed
// platform events (submit, digg, promote, rank-change) stream over
// Server-Sent Events at /api/stream through a bounded fan-out bus that
// slow subscribers cannot stall, live metrics are at /api/stats, and a
// graceful shutdown can flush the whole run to the same dataset files
// a batch generation produces.
//
// Serving reads is lock-free (internal/httpapi): the write side —
// the live stepper after each tick, and the HTTP submit/digg handlers
// — pre-computes the front page, upcoming queue, story summaries and
// top-user list, pre-serializes them to JSON bytes, and publishes the
// immutable snapshot through an atomic pointer. Hot read handlers
// write those bytes straight to the wire with zero allocations and
// answer conditional GETs with 304s via a generation-derived ETag,
// while digg.Platform's generation and per-story version counters let
// each publication re-encode only what changed. Readers therefore
// never wait behind the simulation writer: the shared RWMutex guards
// only writes, snapshot rebuilds and the point-in-time fallback paths
// (see internal/httpapi's package documentation for the architecture).
//
// The HTTP surface is versioned (internal/apiv1): /v1/* speaks a
// frozen, transport-agnostic contract — request/response types, a
// machine-readable error envelope with stable codes, opaque
// generation-stamped cursors on every list endpoint, and batch write
// endpoints (diggs:batch, stories:batch) that apply up to a thousand
// votes or submissions as one write transaction — while the
// unversioned /api/* routes remain as deprecated aliases. Golden
// fixtures pin the wire format and CI refuses contract drift without
// a version note in docs/api.md.
//
// Between the statistical core and every serving consumer sits
// digg.Store, the command/query interface extracted from the
// in-memory *digg.Platform: httpapi.Server, live.Service, the agent
// stepper and the dataset exporter all compile against the interface,
// so backends plug in underneath the HTTP surface without touching
// any caller.
//
// The first such backend is the durability layer (internal/wal +
// internal/durable): diggd -data-dir wraps the platform in a
// durable.Store that write-ahead logs every command — a segmented
// binary log with fixed CRC32-C record headers and a genesis record
// holding the run's seed and config — before applying it, takes
// periodic atomically-renamed full-state checkpoints, and truncates
// log segments the newest checkpoint covers. A restart recovers the
// newest valid checkpoint plus the replayed WAL tail (torn trailing
// records are truncated, mid-log corruption refuses recovery) and
// reproduces the platform with zero observable state change. Batch
// endpoints and each live tick group their whole write burst through
// the optional digg.Batcher capability into one WAL append and one
// fsync, so durable batch throughput stays within ~12% of the
// in-memory rate, while reads never touch the WAL at all (the
// lock-free snapshot path is unchanged). Three -fsync policies trade
// machine-crash durability against write latency; `diggstats -wal`
// inspects a data directory. See docs/persistence.md. Cursors ride the snapshot infrastructure:
// pages are cut lock-free from pre-rendered bytes whenever the
// published snapshot can satisfy them, with a whole-page locked
// fallback past the pre-rendered depth; the cursor's boundary key
// (submission index, promotion index, story id, rank or link index —
// each chosen to stay stable under the live writer) resumes iteration
// without duplicating or skipping an entry even as new generations
// publish between pages.
//
// Above a certain write rate one platform lock and one WAL fsync
// become the ceiling, so the write path shards (internal/shard):
// diggd -shards N partitions stories across N shard-local platforms —
// story ID modulo N over interleaved dense ID sequences, so the
// merged story sequence is bit-identical to a single platform's —
// each shard optionally wrapped in its own durable.Store with a
// private WAL directory (data-dir/shard-0000, ...). Batch writes
// split into per-shard sub-batches applied concurrently, one WAL
// append and one overlapped fsync per shard per burst, so vote
// throughput scales with cores (BenchmarkShardedBatchDigg; first
// data point in BENCH_shard.json via cmd/benchjson); reads
// scatter-gather through merged story and promotion views that
// preserve single-platform ordering. The composite generation is the
// sum of the per-shard generations — strictly monotonic, so ETags
// and snapshot republishing are unchanged — and v1 cursors carry the
// per-shard generation vector, keeping the no-duplicate/no-skip
// pagination guarantee and refusing cursors minted under a different
// shard layout. Crash recovery opens every shard independently and
// trims unacknowledged stories past the first hole in the merged ID
// sequence (a burst acks only after every shard's fsync), so a torn
// tail in one shard's WAL cannot leave phantom stories. GET /metrics
// exposes per-shard write/replay/generation counters in Prometheus
// text format, and diggstats -wal reports shard-by-shard health. See
// docs/sharding.md.
//
// Production observability (internal/obs) makes every layer's latency
// a measured distribution rather than a guess: lock-free,
// allocation-free log-bucketed histograms (two atomic adds per
// observation, quantiles interpolated from mergeable snapshots on the
// cold path) record HTTP request latency per route class, WAL append
// vs fsync, checkpoint build vs write, per-shard batch apply and
// scatter-gather merge, snapshot rebuilds, and live step duration —
// without breaking the read path's 0-alloc guarantee (the wrapper is
// two monotonic clock reads inside the route table). GET /metrics
// exports them as Prometheus histogram series; GET /debug/obs dumps
// p50/p90/p99/p999 summaries plus a ring of recent slow traces, each
// request tagged with an X-Trace-Id and span-timed through the batch
// write pipeline (decode, apply, republish); diggstats -obs
// pretty-prints the dump, and diggd -profile-dir continuously rotates
// CPU/heap profiles so the profile covering a regression window is
// already on disk. BENCH_obs.json records read/write latency
// quantiles under a mixed workload via the histogram-aware
// cmd/benchjson. See docs/observability.md.
//
// Durability makes one node survive a restart; replication
// (internal/repl) makes the service survive the node. A primary diggd
// streams its WAL — the same CRC-framed records the durability layer
// fsyncs — over HTTP chunked responses under /repl/v1/, resumable
// from any retained LSN. A follower (diggd -replica-of URL)
// bootstraps from the primary's newest checkpoint, replays and tails
// the log into its own durable store, and serves the entire read
// surface through the same lock-free snapshot path at primary speed
// (BenchmarkServedReadsFollower; BENCH_repl.json), while writes
// answer 503 read_only_replica and every response carries
// X-Replica-Lag. GET /readyz gates rotation on replication health,
// /metrics grows per-shard applied/shipped LSN gauges and a lag
// histogram, diggstats -wal reports a follower's recorded position
// (with a -max-lag bound for monitoring), and diggd -promote runs a
// highest-LSN election to fail over. A chaos harness (fault-injecting
// transport: drops, partitions, kill/restart, failover-and-rejoin)
// pins convergence to byte-identical stores under the race detector.
// See docs/replication.md.
//
// The load harness (internal/load + cmd/diggload) closes the loop on
// both of those layers: open-loop, coordinated-omission-safe drivers
// (wrk2-style intended-arrival timelines; latency is completion minus
// intended start, so a server stall inflates the recorded tail instead
// of silently shedding offered load) generate the four client
// populations a social-news site sees — Zipf-skewed readers matching
// the paper's measured attention skew, cursor crawlers, batch
// digg/submit writers, and swarms of concurrent SSE subscribers — as
// one mixed scenario against a running diggd, then gate the run on the
// SLOs docs/observability.md suggests, reading both the client-side
// obs histograms and the server's own /debug/obs summaries. Verdicts
// land in BENCH_load.json (cmd/benchjson envelope), CI runs a smoke
// scenario on every push, and diggd -trust-loopback exempts the
// co-located harness from per-IP rate limits. Underneath the swarm,
// live.Bus is a shared append-only broadcast ring: publish is O(1)
// regardless of subscriber count (measured flat from 100 to 100,000
// subscribers), subscribers pull at their own cursors, a lapped
// cursor surfaces as an exact drop count rather than a stall, and the
// SSE layer turns that lag into an `id:`-numbered, Last-Event-ID-
// resumable stream with an explicit lag event on overflow — which the
// v1 client's Stream wraps into transparent reconnect-and-resume. See
// docs/load.md.
//
// See README.md for the package map, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate one experiment
// per paper artifact; run them with:
//
//	go test -bench=. -benchmem
package diggsim
