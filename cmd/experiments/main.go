// Command experiments regenerates the paper's tables and figures from a
// synthetic corpus and prints each report to stdout.
//
// Usage:
//
//	experiments [-run id[,id...]] [-small] [-seed N] [-workers N] [-list]
//
// With no -run flag every registered experiment runs. -small switches
// to the reduced corpus (fast; use for smoke tests), -list prints the
// experiment index and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diggsim/internal/dataset"
	"diggsim/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	small := flag.Bool("small", false, "use the reduced corpus for a fast run")
	seed := flag.Uint64("seed", 20060630, "corpus seed")
	expSeed := flag.Uint64("expseed", 99, "experiment-local seed (CV shuffles, extensions)")
	workers := flag.Int("workers", 0, "story-simulation workers (0 = one per CPU; corpus is identical for any value)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Title(id))
		}
		return
	}

	cfg := dataset.DefaultConfig()
	if *small {
		cfg = dataset.SmallConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	fmt.Fprintf(os.Stderr, "generating corpus (%d users, %d submissions)...\n",
		cfg.Users, cfg.Submissions)
	start := time.Now()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpus ready in %v: %d stories, %d promoted, %d upcoming at snapshot\n",
		time.Since(start).Round(time.Millisecond), len(ds.Stories),
		ds.Platform.PromotedCount(), len(ds.UpcomingAtSnapshot))

	runner := &experiments.Runner{DS: ds, Seed: *expSeed}
	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		res, err := runner.Run(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("==== %s: %s ====\n%s\n", res.ID, res.Title, res.Text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
