// Command benchjson runs the repo's key serving and write-path
// benchmarks and emits one machine-readable JSON document, so perf
// numbers can be committed alongside the code they measure and
// compared across PRs without scraping `go test -bench` text by hand.
//
// Usage:
//
//	benchjson [-out BENCH_shard.json] [-benchtime 1s] [-count 1]
//	          [-bench REGEX] [pkg ...]
//
// With no packages, the default benchmark set covers the read path
// (BenchmarkServedReads, BenchmarkServedReadsWhileLive), the batch
// write path (BenchmarkBatchDigg, BenchmarkDurableBatchDigg), and the
// sharded write path (BenchmarkShardedBatchDigg at 1 and 4 shards).
// The output records the host's core count: sharded speedups are
// core-bound, so a number measured on one core is not comparable to
// one measured on eight.
//
// The parser is histogram-aware: benchmarks that report latency
// quantiles via b.ReportMetric with units like read-p99-ns (see
// httpapi's BenchmarkMixedWorkload) get those points lifted out of the
// flat metric map into a quantiles_ns object, so a distribution is
// first-class in the document instead of buried among ad-hoc units.
// BENCH_obs.json is such a run:
//
//	benchjson -out BENCH_obs.json -bench 'BenchmarkMixedWorkload$' \
//	    -notes "..." ./internal/httpapi/
//
// benchjson measures in-process microbenchmarks; its sibling
// cmd/diggload measures the served system end to end — a mixed load
// scenario over real sockets against a running diggd — and emits
// BENCH_load.json wrapping the same host envelope around a full
// internal/load report with SLO verdicts. Commit both: ns/op says what
// a code path costs, the load report says whether the assembled server
// holds its SLOs under realistic traffic.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// run is one parsed benchmark result line.
type run struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// Quantiles holds latency-distribution points reported by
	// histogram-aware benchmarks (metric units shaped like
	// read-p99-ns), keyed without the -ns suffix; values are
	// nanoseconds.
	Quantiles map[string]float64 `json:"quantiles_ns,omitempty"`
}

// report is the emitted document.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	CPU         string `json:"cpu,omitempty"`
	Benchtime   string `json:"benchtime"`
	Count       int    `json:"count"`
	Bench       string `json:"bench"`
	Notes       string `json:"notes,omitempty"`
	Benchmarks  []run  `json:"benchmarks"`
}

// quantileUnit matches the metric units histogram-aware benchmarks
// use for distribution points: <series>-p<NN>-ns, e.g. write-p50-ns.
var quantileUnit = regexp.MustCompile(`^[a-z]+-p[0-9]+(?:\.[0-9]+)?-ns$`)

// defaultBench selects the key serving/write-path benchmarks named in
// the perf acceptance criteria.
const defaultBench = "BenchmarkServedReads$|BenchmarkServedReadsWhileLive$|BenchmarkBatchDigg$|BenchmarkDurableBatchDigg$|BenchmarkShardedBatchDigg"

var defaultPkgs = []string{"./internal/httpapi/", "./internal/shard/"}

func main() {
	out := flag.String("out", "BENCH_shard.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	bench := flag.String("bench", defaultBench, "go test -bench regex")
	notes := flag.String("notes", "", "free-form note recorded in the document")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPkgs
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Benchtime:   *benchtime,
		Count:       *count,
		Bench:       *bench,
		Notes:       *notes,
	}

	for _, pkg := range pkgs {
		runs, cpu, err := benchPackage(pkg, *bench, *benchtime, *count)
		if err != nil {
			fatal(err)
		}
		if cpu != "" {
			rep.CPU = cpu
		}
		rep.Benchmarks = append(rep.Benchmarks, runs...)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Benchmarks), *out)
}

// benchPackage shells out to go test and parses the text protocol:
// each result line is NAME <iterations> then value/unit pairs.
func benchPackage(pkg, bench, benchtime string, count int) ([]run, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-count", strconv.Itoa(count), pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("go test -bench %s %s: %w", bench, pkg, err)
	}
	var runs []run
	var cpu string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := run{
			// Strip the trailing -GOMAXPROCS suffix go test appends.
			Name:       trimProcsSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; {
			case unit == "ns/op":
				r.NsPerOp = v
			case quantileUnit.MatchString(unit):
				if r.Quantiles == nil {
					r.Quantiles = map[string]float64{}
				}
				r.Quantiles[strings.TrimSuffix(unit, "-ns")] = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		runs = append(runs, r)
	}
	return runs, cpu, sc.Err()
}

// trimProcsSuffix drops go test's -N parallelism suffix from a
// benchmark name (Benchmark/sub-8 -> Benchmark/sub) without touching
// hyphenated sub-benchmark names.
func trimProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
