// Command diggscrape crawls a running diggd server — the front page,
// the upcoming queue, every story's vote list and every voter's fan
// links — and writes the result as a dataset directory, reproducing the
// paper's data-collection pipeline over a real HTTP connection.
//
// The crawl speaks the versioned v1 API through the typed client SDK:
// listings iterate opaque generation-stamped cursors (instead of the
// old offset loops), so a crawl of a live, continuously-evolving
// server never sees a story twice and never skips one within a
// generation; -page sets the cursor page size.
//
// Usage:
//
//	diggscrape -url http://127.0.0.1:8080 -out DIR [-front N] [-upcoming N]
//	           [-all] [-page N] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diggsim/internal/httpapi"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "diggd base URL")
	out := flag.String("out", "", "output dataset directory (required)")
	front := flag.Int("front", 200, "front-page stories to scrape")
	upcoming := flag.Int("upcoming", 900, "upcoming stories to scrape")
	all := flag.Bool("all", false, "walk the full story listing by cursor instead of the queues")
	page := flag.Int("page", 200, "cursor page size for listing crawls")
	workers := flag.Int("workers", 8, "concurrent fetchers")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall scrape timeout")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "diggscrape: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	client := httpapi.NewClient(*url)
	if err := client.Health(ctx); err != nil {
		fatal(fmt.Errorf("server not reachable: %w", err))
	}
	start := time.Now()
	ds, err := httpapi.Scrape(ctx, client, httpapi.ScrapeConfig{
		FrontPageLimit: *front,
		UpcomingLimit:  *upcoming,
		All:            *all,
		PageSize:       *page,
		Workers:        *workers,
	})
	if err != nil {
		fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("scraped %d stories (%d front-page sample, %d upcoming), %d fan links in %v -> %s\n",
		len(ds.Stories), len(ds.FrontPage), len(ds.UpcomingAtSnapshot),
		ds.Graph.NumEdges(), time.Since(start).Round(time.Millisecond), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggscrape:", err)
	os.Exit(1)
}
