// Command diggd serves a simulated Digg platform over HTTP/JSON — the
// scrape target for cmd/diggscrape, standing in for digg.com circa
// June 2006.
//
// Usage:
//
//	diggd [-addr :8080] [-small] [-seed N] [-live] [-speedup 600]
//	      [-submissions-per-hour 60] [-export DIR] [-pprof ADDR]
//
// The server generates a corpus at startup. In the default static mode
// it then serves the corpus read-mostly (live submissions and votes are
// still accepted: POST /api/stories, POST /api/stories/{id}/digg), with
// the site clock advancing in real time from the snapshot instant so
// the upcoming-queue view does not go stale.
//
// With -live the site keeps evolving on its own: a real-time simulation
// clock maps wall time to sim minutes at -speedup sim-minutes per
// wall-minute, new stories arrive as a Poisson process over the
// calibrated submitter mix (-submissions-per-hour, per sim-hour), and
// the behaviour model keeps casting votes and promoting stories while
// the server runs. Live platform events stream over SSE at
// GET /api/stream and live metrics at GET /api/stats. On shutdown,
// -export DIR flushes the final platform state — pregenerated corpus
// plus everything that happened live — to dataset CSV files.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/httpapi"
	"diggsim/internal/live"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	small := flag.Bool("small", true, "use the reduced corpus (default on for quick startup)")
	seed := flag.Uint64("seed", 20060630, "corpus seed")
	rate := flag.Float64("rate", 0, "rate limit in requests/second (0 = unlimited)")
	verbose := flag.Bool("v", false, "log every request")
	liveMode := flag.Bool("live", false, "keep simulating in real time: new submissions, votes and promotions while serving")
	speedup := flag.Float64("speedup", 600, "live mode: simulation minutes per wall-clock minute")
	subsPerHour := flag.Float64("submissions-per-hour", 60, "live mode: mean story submissions per simulation hour")
	exportDir := flag.String("export", "", "live mode: flush the final platform state to dataset CSVs in this directory on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for profiling live serving")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "diggd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "diggd: pprof:", err)
			}
		}()
	}

	cfg := dataset.DefaultConfig()
	if *small {
		cfg = dataset.SmallConfig()
	}
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "diggd: generating corpus (%d users, %d submissions)...\n",
		cfg.Users, cfg.Submissions)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var svc *live.Service
	var srv *httpapi.Server
	liveErr := make(chan error, 1)
	if *liveMode {
		// Live ranks must reflect live promotions, so rank lookups go to
		// the platform instead of the frozen generation-time snapshot.
		srv = httpapi.NewServer(ds.Platform, cfg.SnapshotAt, nil)
		svc, err = live.NewService(ds.Platform, live.Config{
			Speedup:            *speedup,
			SubmissionsPerHour: *subsPerHour,
			Seed:               *seed + 1,
			StartAt:            cfg.SnapshotAt,
			Agent:              cfg.Agent,
			SubmitterZipfS:     cfg.SubmitterZipfS,
			InterestExponent:   cfg.InterestExponent,
			TopUserListSize:    cfg.TopUserListSize,
		})
		if err != nil {
			fatal(err)
		}
		srv.AttachLive(svc)
		go func() { liveErr <- svc.Run(ctx) }()
		fmt.Fprintf(os.Stderr, "diggd: live mode, speedup %.0fx, %.0f submissions/sim-hour\n",
			*speedup, *subsPerHour)
	} else {
		srv = httpapi.NewServer(ds.Platform, cfg.SnapshotAt, ds.RankOf)
		// Static mode: the corpus is frozen but the site clock still
		// advances in real time from the snapshot, so the upcoming-queue
		// view (and default timestamps for manual posts) never go stale.
		clock := live.NewClock(time.Now(), cfg.SnapshotAt, 1)
		srv.SetNowFunc(func() digg.Minutes { return clock.Now(time.Now()) })
	}

	metrics := httpapi.NewMetrics()
	srv.AttachMetrics(metrics)
	handler := http.Handler(srv.Handler())
	if *verbose {
		handler = httpapi.LoggingMiddleware(os.Stderr, handler)
	}
	if *rate > 0 {
		limiter := httpapi.NewRateLimiter(*rate, int(*rate)+1)
		handler = limiter.Middleware(handler)
	}
	handler = metrics.Middleware(handler)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "diggd: serving %d stories on %s\n", len(ds.Stories), *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	// On a signal, both ctx.Done and the live goroutine's nil send race
	// to wake this select; either way the graceful path below must run,
	// so the liveErr case falls through to it too.
	liveDrained := false
	select {
	case <-ctx.Done():
	case err := <-liveErr:
		if err != nil {
			fatal(err)
		}
		liveDrained = true // Run returned nil: ctx was cancelled
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		return
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if svc != nil {
		if !liveDrained {
			if err := <-liveErr; err != nil {
				fatal(err)
			}
		}
		if *exportDir != "" {
			out := svc.Export()
			if err := out.Save(*exportDir); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "diggd: exported %d stories (%d promoted) to %s\n",
				len(out.Stories), len(out.FrontPage), *exportDir)
		}
	}
	fmt.Fprintln(os.Stderr, "diggd: shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggd:", err)
	os.Exit(1)
}
