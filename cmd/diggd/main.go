// Command diggd serves a simulated Digg platform over HTTP/JSON — the
// scrape target for cmd/diggscrape, standing in for digg.com circa
// June 2006.
//
// Usage:
//
//	diggd [-addr :8080] [-small] [-seed N]
//
// The server generates a corpus at startup and then serves it
// read-mostly; live submissions and votes are also accepted (POST
// /api/stories, POST /api/stories/{id}/digg).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diggsim/internal/dataset"
	"diggsim/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	small := flag.Bool("small", true, "use the reduced corpus (default on for quick startup)")
	seed := flag.Uint64("seed", 20060630, "corpus seed")
	rate := flag.Float64("rate", 0, "rate limit in requests/second (0 = unlimited)")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	cfg := dataset.DefaultConfig()
	if *small {
		cfg = dataset.SmallConfig()
	}
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "diggd: generating corpus (%d users, %d submissions)...\n",
		cfg.Users, cfg.Submissions)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	srv := httpapi.NewServer(ds.Platform, cfg.SnapshotAt, ds.RankOf)
	handler := http.Handler(srv.Handler())
	if *verbose {
		handler = httpapi.LoggingMiddleware(os.Stderr, handler)
	}
	if *rate > 0 {
		limiter := httpapi.NewRateLimiter(*rate, int(*rate)+1)
		handler = limiter.Middleware(handler)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "diggd: serving %d stories on %s\n", len(ds.Stories), *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "diggd: shut down cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggd:", err)
	os.Exit(1)
}
