// Command diggd serves a simulated Digg platform over HTTP/JSON — the
// scrape target for cmd/diggscrape, standing in for digg.com circa
// June 2006.
//
// Usage:
//
//	diggd [-addr :8080] [-small] [-seed N] [-live] [-speedup 600]
//	      [-submissions-per-hour 60] [-export DIR] [-pprof ADDR]
//	      [-data-dir DIR] [-fsync interval] [-checkpoint-interval 1m]
//	      [-shards N] [-slow-threshold 250ms] [-profile-dir DIR]
//	      [-replica-of URL] [-ready-max-lag 5s]
//	diggd -promote -peers URL1,URL2,...
//
// The server generates a corpus at startup. In the default static mode
// it then serves the corpus read-mostly (live submissions and votes are
// still accepted: POST /api/stories, POST /api/stories/{id}/digg), with
// the site clock advancing in real time from the snapshot instant so
// the upcoming-queue view does not go stale.
//
// With -live the site keeps evolving on its own: a real-time simulation
// clock maps wall time to sim minutes at -speedup sim-minutes per
// wall-minute, new stories arrive as a Poisson process over the
// calibrated submitter mix (-submissions-per-hour, per sim-hour), and
// the behaviour model keeps casting votes and promoting stories while
// the server runs. Live platform events stream over SSE at
// GET /api/stream and live metrics at GET /api/stats. On shutdown,
// -export DIR flushes the final platform state — pregenerated corpus
// plus everything that happened live — to dataset CSV files.
//
// With -data-dir the platform is durable (internal/durable): every
// write is logged to a segmented write-ahead log before it applies,
// checkpoints land every -checkpoint-interval, and -fsync selects the
// always/interval/os durability policy. A first boot generates the
// corpus and seeds the directory; every later boot recovers — newest
// checkpoint plus WAL tail — and continues serving with zero
// observable state change. Graceful shutdown writes a final
// checkpoint, so a clean restart replays nothing. Inspect a data
// directory with `diggstats -wal DIR`; see docs/persistence.md.
//
// With -shards N (N >= 2) stories are partitioned across N shard-local
// stores (internal/shard): writes route by story id, batch writes
// apply per-shard concurrently, and with -data-dir each shard keeps
// its own write-ahead log under DIR/shard-NNNN/, so a batch costs one
// overlapped fsync per shard instead of a serial one. Recovery opens
// every shard WAL and reconciles them; see docs/sharding.md.
//
// With -replica-of URL the node boots as a read-only follower
// (internal/repl, docs/replication.md): it bootstraps -data-dir from
// the primary's newest checkpoint, tails the primary's WAL streams,
// and serves the full read surface from its own store. Writes answer
// 503 read_only_replica; every response carries X-Replica-Lag; and
// GET /readyz gates on staleness staying under -ready-max-lag. Every
// durable node (primary or follower) serves the replication surface
// under /repl/v1/. `diggd -promote -peers ...` runs the failover
// election: it promotes the reachable follower with the highest
// applied LSN and prints the winner's URL.
//
// Observability (docs/observability.md): every request carries an
// X-Trace-Id; requests at or above -slow-threshold are retained with
// their spans in the slow-trace ring (GET /debug/obs) and logged.
// Latency histograms for the serve/write/durability paths export in
// Prometheus format at GET /metrics. With -profile-dir the server
// continuously rotates CPU and heap profiles into DIR so the window
// covering a latency regression is already on disk. Lifecycle logging
// is structured (log/slog text) on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/httpapi"
	"diggsim/internal/live"
	"diggsim/internal/obs"
	"diggsim/internal/repl"
	"diggsim/internal/shard"
	"diggsim/internal/wal"
)

// logger is the structured lifecycle log: startup, recovery, shutdown
// and slow-request lines all go through it, so diggd's stderr is
// machine-parseable (slog text format, key=value).
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// genesisInfo is the provenance blob stored in the data directory's
// genesis record: the seed and full generation config, so the social
// graph and every RNG substream of the corpus are reconstructible from
// the directory alone, and a recovering boot serves with the same
// calibration it was created with.
type genesisInfo struct {
	Seed      uint64         `json:"seed"`
	CreatedAt string         `json:"created_at"`
	Config    dataset.Config `json:"config"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	small := flag.Bool("small", true, "use the reduced corpus (default on for quick startup)")
	seed := flag.Uint64("seed", 20060630, "corpus seed")
	rate := flag.Float64("rate", 0, "rate limit in requests/second (0 = unlimited)")
	trustLoopback := flag.Bool("trust-loopback", false, "exempt loopback (127.0.0.1/::1) clients from -rate limiting, e.g. for a co-located diggload harness")
	verbose := flag.Bool("v", false, "log every request")
	liveMode := flag.Bool("live", false, "keep simulating in real time: new submissions, votes and promotions while serving")
	speedup := flag.Float64("speedup", 600, "live mode: simulation minutes per wall-clock minute")
	subsPerHour := flag.Float64("submissions-per-hour", 60, "live mode: mean story submissions per simulation hour")
	exportDir := flag.String("export", "", "live mode: flush the final platform state to dataset CSVs in this directory on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for profiling live serving")
	dataDir := flag.String("data-dir", "", "durable mode: write-ahead log + checkpoints in this directory; boots by recovery when it already holds a store")
	fsync := flag.String("fsync", "interval", "durable mode fsync policy: always, interval or os")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute, "durable mode: minimum interval between automatic checkpoints")
	shards := flag.Int("shards", 1, "partition stories across N shard-local stores; with -data-dir each shard keeps its own WAL (see docs/sharding.md)")
	slowThreshold := flag.Duration("slow-threshold", 250*time.Millisecond, "retain and log traces of requests at least this slow (0 disables slow-trace capture)")
	profileDir := flag.String("profile-dir", "", "continuously rotate CPU and heap profiles into this directory (see docs/observability.md)")
	profilePeriod := flag.Duration("profile-period", 30*time.Second, "length of each continuous-profiling capture window")
	replicaOf := flag.String("replica-of", "", "boot as a read-only follower of this primary base URL (requires -data-dir; see docs/replication.md)")
	peers := flag.String("peers", "", "comma-separated peer base URLs for -promote's failover election")
	promote := flag.Bool("promote", false, "failover: promote the reachable peer with the highest applied LSN among -peers, print the winner, and exit")
	readyMaxLag := flag.Duration("ready-max-lag", httpapi.DefaultReadyMaxLag, "follower readiness: /readyz fails while replication staleness exceeds this bound")
	flag.Parse()
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}

	if *promote {
		if *peers == "" {
			fatal(errors.New("-promote needs -peers URL1,URL2,..."))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		winner, err := repl.ElectAndPromote(ctx, strings.Split(*peers, ","))
		if err != nil {
			fatal(err)
		}
		fmt.Println(winner)
		return
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			fatal(errors.New("-replica-of needs -data-dir for the follower's own log"))
		}
		if *liveMode {
			fatal(errors.New("-replica-of and -live are mutually exclusive: a follower replays the primary's writes"))
		}
	}

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "url", "http://"+*pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	dopts := durable.Options{Sync: syncPolicy, CheckpointEvery: *ckptEvery}

	cfg := dataset.DefaultConfig()
	if *small {
		cfg = dataset.SmallConfig()
	}
	cfg.Seed = *seed

	// Establish the store: recover an existing data directory, or
	// generate the corpus (and, with -data-dir, seed a new directory
	// around it). Everything downstream compiles against digg.Store,
	// so durability is only this constructor choice.
	var (
		store   digg.Store
		dstore  *durable.Store
		sdstore *shard.Store // sharded store with its own WALs (durable only)
		rankOf  func(digg.UserID) int
		startAt digg.Minutes
		stories int
		// persist is whichever durable store (plain or sharded) needs a
		// final checkpoint at shutdown.
		persist interface {
			Checkpoint() error
			Close() error
			Generation() uint64
		}
		// follower/replNode are set when booting with -replica-of.
		follower *repl.Follower
		replNode *repl.Node
	)
	// A data directory is either unsharded (WAL at its root) or sharded
	// (shard-0000/ ... subdirectories); the layout on disk wins over
	// the -shards flag on recovery, and mixing them is refused rather
	// than guessed at.
	if *dataDir != "" && *shards > 1 && durable.Exists(*dataDir) {
		fatal(fmt.Errorf("%s holds an unsharded store; recover it without -shards or start a fresh directory", *dataDir))
	}
	if *dataDir != "" && *shards == 1 && shard.Exists(*dataDir) {
		fatal(fmt.Errorf("%s holds a sharded store; recover it with -shards (any value >= 2) or start a fresh directory", *dataDir))
	}
	if *replicaOf != "" {
		// Follower boot: seed (or resume) the local directory from the
		// primary's checkpoint, open it exactly as a restarting primary
		// would, and tail the primary's WAL streams. A diverged directory
		// (a demoted primary with unreplicated records) is wiped and
		// re-seeded; see docs/replication.md.
		tr := &repl.HTTPTransport{Base: strings.TrimRight(*replicaOf, "/")}
		node, err := repl.Bootstrap(context.Background(), tr, *dataDir, dopts)
		if err != nil {
			fatal(err)
		}
		replNode = node
		follower = repl.NewFollower(node.Target, tr, repl.Options{
			StateDir: *dataDir,
			Primary:  *replicaOf,
		})
		store = node.Store()
		var genesis []byte
		if node.Sharded != nil {
			genesis, persist = node.Sharded.Genesis(), node.Sharded
		} else {
			genesis, persist = node.Durable.Genesis(), node.Durable
		}
		var gi genesisInfo
		if err := json.Unmarshal(genesis, &gi); err == nil && gi.Config.Users > 0 {
			cfg = gi.Config
		}
		startAt = latestActivity(store, cfg.SnapshotAt)
		stories = store.NumStories()
		logger.Info("bootstrapped follower",
			"primary", *replicaOf, "dir", *dataDir, "shards", node.Shards, "stories", stories)
	} else if *dataDir != "" && *shards > 1 && shard.Exists(*dataDir) {
		sstore, err := shard.Open(*dataDir, dopts)
		if err != nil {
			fatal(err)
		}
		sdstore = sstore
		rec := sstore.Recovery()
		var replayed, rejected uint64
		torn := 0
		for _, r := range rec.Shards {
			replayed += uint64(r.Replayed)
			rejected += uint64(r.Rejected)
			if r.TailTruncated {
				torn++
			}
		}
		var gi genesisInfo
		if err := json.Unmarshal(sstore.Genesis(), &gi); err == nil && gi.Config.Users > 0 {
			cfg = gi.Config
		}
		store, persist = sstore, sstore
		startAt = latestActivity(sstore, cfg.SnapshotAt)
		stories = sstore.NumStories()
		logger.Info("recovered sharded store",
			"dir", *dataDir,
			"shards", sstore.ShardCount(),
			"stories", stories,
			"generation", rec.Generation,
			"replayed", replayed,
			"rejected", rejected,
			"trimmed", rec.Trimmed,
			"torn_shards", torn)
	} else if *dataDir != "" && durable.Exists(*dataDir) {
		dstore, err = durable.Open(*dataDir, dopts)
		if err != nil {
			fatal(err)
		}
		rec := dstore.Recovery()
		var gi genesisInfo
		if err := json.Unmarshal(dstore.Genesis(), &gi); err == nil && gi.Config.Users > 0 {
			cfg = gi.Config
		}
		store, persist = dstore, dstore
		startAt = latestActivity(dstore, cfg.SnapshotAt)
		stories = dstore.NumStories()
		logger.Info("recovered durable store",
			"dir", *dataDir,
			"stories", stories,
			"generation", rec.Generation,
			"checkpoint_lsn", rec.CheckpointLSN,
			"replayed", rec.Replayed,
			"rejected", rec.Rejected,
			"torn_tail", rec.TailTruncated)
	} else {
		logger.Info("generating corpus", "users", cfg.Users, "submissions", cfg.Submissions)
		ds, err := dataset.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		store = ds.Platform
		startAt = cfg.SnapshotAt
		stories = len(ds.Stories)
		rankOf = ds.RankOf
		if *dataDir != "" {
			genesis, err := json.Marshal(genesisInfo{
				Seed: *seed, CreatedAt: time.Now().UTC().Format(time.RFC3339), Config: cfg,
			})
			if err != nil {
				fatal(err)
			}
			if *shards > 1 {
				sstore, err := shard.Create(*dataDir, ds.Platform, *shards, genesis, dopts)
				if err != nil {
					fatal(err)
				}
				sdstore = sstore
				store, persist = sstore, sstore
				logger.Info("created sharded durable store",
					"dir", *dataDir, "shards", *shards, "fsync", syncPolicy.String(), "checkpoint_every", *ckptEvery)
			} else {
				dstore, err = durable.Create(*dataDir, ds.Platform, genesis, dopts)
				if err != nil {
					fatal(err)
				}
				store, persist = dstore, dstore
				logger.Info("created durable store",
					"dir", *dataDir, "fsync", syncPolicy.String(), "checkpoint_every", *ckptEvery)
			}
		} else if *shards > 1 {
			sstore, err := shard.FromPlatform(ds.Platform, *shards)
			if err != nil {
				fatal(err)
			}
			store = sstore
			logger.Info("sharded in-memory store", "shards", *shards)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *profileDir != "" {
		go func() {
			opts := obs.ProfilerOptions{
				Period: *profilePeriod,
				Logf: func(format string, args ...any) {
					logger.Info("profiler", "msg", fmt.Sprintf(format, args...))
				},
			}
			if err := obs.CaptureProfiles(ctx, *profileDir, opts); err != nil {
				logger.Error("continuous profiling stopped", "err", err)
			}
		}()
		logger.Info("continuous profiling", "dir", *profileDir, "period", *profilePeriod)
	}

	var svc *live.Service
	var srv *httpapi.Server
	liveErr := make(chan error, 1)
	if *liveMode {
		// Live ranks must reflect live promotions, so rank lookups go to
		// the platform instead of the frozen generation-time snapshot.
		srv = httpapi.NewServer(store, startAt, nil)
		svc, err = live.NewService(store, live.Config{
			Speedup:            *speedup,
			SubmissionsPerHour: *subsPerHour,
			Seed:               *seed + 1 + store.Generation(),
			StartAt:            startAt,
			Agent:              cfg.Agent,
			SubmitterZipfS:     cfg.SubmitterZipfS,
			InterestExponent:   cfg.InterestExponent,
			TopUserListSize:    cfg.TopUserListSize,
		})
		if err != nil {
			fatal(err)
		}
		srv.AttachLive(svc)
		go func() { liveErr <- svc.Run(ctx) }()
		logger.Info("live mode", "speedup", *speedup, "submissions_per_sim_hour", *subsPerHour)
	} else {
		// Static mode: the corpus is frozen but the site clock still
		// advances in real time from the snapshot, so the upcoming-queue
		// view (and default timestamps for manual posts) never go stale.
		// After recovery there is no generation-time rank snapshot;
		// rankOf stays nil and ranks come from the store.
		srv = httpapi.NewServer(store, startAt, rankOf)
		clock := live.NewClock(time.Now(), startAt, 1)
		srv.SetNowFunc(func() digg.Minutes { return clock.Now(time.Now()) })
	}

	// The metrics timeline samples the registry once a second into a
	// ~15-minute ring: GET /debug/timeline serves windowed deltas,
	// rates, and histogram quantiles from it, and the multi-window SLO
	// burn-rate evaluator it feeds turns /readyz degraded before users
	// notice a freshness or latency regression.
	timeline := obs.NewTimeline(obs.Default, 900, time.Second)
	go timeline.Run(ctx)
	srv.AttachTimeline(timeline, httpapi.DefaultSLOs()...)

	// Durable nodes stamp the accepting request's trace ID next to each
	// commit, so a follower heartbeat can name the write whose
	// visibility it just confirmed (end-to-end freshness tracing).
	switch {
	case dstore != nil:
		srv.SetWriteTraceFunc(dstore.SetWriteTrace)
	case sdstore != nil:
		srv.SetWriteTraceFunc(func(id uint64) {
			for i := 0; i < sdstore.ShardCount(); i++ {
				sdstore.DurableShard(i).SetWriteTrace(id)
			}
		})
	}

	if follower != nil {
		srv.AttachRepl(follower, *readyMaxLag)
	}
	// Any node with its own write-ahead log serves the replication
	// surface under /repl/v1/: a primary streams to followers, a
	// follower answers the status/promote calls elections make.
	var replSrc *repl.Source
	var srcShards []repl.SourceShard
	switch {
	case replNode != nil:
		srcShards = replNode.SourceShards()
	case dstore != nil:
		srcShards = []repl.SourceShard{{Dir: dstore.Dir(), Head: dstore.AppliedLSN, LastCommit: dstore.LastCommit}}
	case sdstore != nil:
		for i := 0; i < sdstore.ShardCount(); i++ {
			ds := sdstore.DurableShard(i)
			srcShards = append(srcShards, repl.SourceShard{Dir: ds.Dir(), Head: ds.AppliedLSN, LastCommit: ds.LastCommit})
		}
	}
	if len(srcShards) > 0 {
		replSrc = &repl.Source{Shards: srcShards}
		if follower != nil {
			replSrc.Role = func() string {
				if follower.ReadOnly() {
					return "follower"
				}
				return "primary"
			}
			replSrc.Promote = follower.Promote
		}
		srv.MountRepl(replSrc)
		logger.Info("replication surface mounted", "shards", len(srcShards), "path", "/repl/v1/")
	}

	metrics := httpapi.NewMetrics()
	srv.AttachMetrics(metrics)
	handler := http.Handler(srv.Handler())
	if *verbose {
		handler = httpapi.LoggingMiddleware(os.Stderr, handler)
	}
	// Tracer sits inside the rate limiter so rejected requests are not
	// traced, and outside the router so every served request gets an
	// X-Trace-Id and a chance at the slow-trace ring.
	tracer := httpapi.NewTracer(*slowThreshold, logger)
	handler = tracer.Middleware(handler)
	if *rate > 0 {
		limiter := httpapi.NewRateLimiter(*rate, int(*rate)+1)
		if *trustLoopback {
			limiter.TrustLoopback()
		}
		handler = limiter.Middleware(handler)
	}
	handler = metrics.Middleware(handler)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	if follower != nil {
		follower.Start()
		logger.Info("tailing primary", "primary", *replicaOf, "ready_max_lag", *readyMaxLag)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "stories", stories, "addr", *addr)
		errCh <- httpServer.ListenAndServe()
	}()
	// On a signal, both ctx.Done and the live goroutine's nil send race
	// to wake this select; either way the graceful path below must run,
	// so the liveErr case falls through to it too.
	liveDrained := false
	select {
	case <-ctx.Done():
	case err := <-liveErr:
		if err != nil {
			fatal(err)
		}
		liveDrained = true // Run returned nil: ctx was cancelled
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		return
	}
	// Stop replication before draining HTTP: the tailers' applies stop,
	// and closing the source ends the otherwise-unbounded WAL streams so
	// followers reconnect elsewhere instead of riding the drain deadline.
	if follower != nil {
		follower.Stop()
	}
	if replSrc != nil {
		replSrc.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		// Long-lived SSE streams (GET /api/stream) never finish on
		// their own, so a connected subscriber always rides into the
		// drain deadline. Force-close the remaining connections rather
		// than dying: the export and final-checkpoint paths below must
		// still run, or a clean restart would replay the WAL tail.
		if !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
		if err := httpServer.Close(); err != nil {
			fatal(err)
		}
	}
	if svc != nil {
		if !liveDrained {
			if err := <-liveErr; err != nil {
				fatal(err)
			}
		}
		if *exportDir != "" {
			out := svc.Export()
			if err := out.Save(*exportDir); err != nil {
				fatal(err)
			}
			logger.Info("exported final state",
				"stories", len(out.Stories), "promoted", len(out.FrontPage), "dir", *exportDir)
		}
	}
	if persist != nil {
		// Final checkpoint + WAL sync: the HTTP server has drained and
		// the live stepper has stopped, so no writer remains and the
		// next boot replays zero records (sharded stores checkpoint
		// every shard).
		if err := persist.Checkpoint(); err != nil {
			fatal(err)
		}
		if err := persist.Close(); err != nil {
			fatal(err)
		}
		logger.Info("final checkpoint", "generation", persist.Generation(), "dir", *dataDir)
	}
	logger.Info("shut down cleanly")
}

// latestActivity returns the latest simulation minute with recorded
// activity — the clock base a recovering server resumes from, so the
// timeline continues instead of rewinding to the corpus snapshot.
func latestActivity(s digg.Store, floor digg.Minutes) digg.Minutes {
	t := floor
	for _, st := range s.Stories() {
		if st.SubmittedAt > t {
			t = st.SubmittedAt
		}
		if n := len(st.Votes); n > 0 && st.Votes[n-1].At > t {
			t = st.Votes[n-1].At
		}
		if st.Promoted && st.PromotedAt > t {
			t = st.PromotedAt
		}
	}
	return t
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
