// Command diggsim generates a synthetic Digg corpus and writes it to a
// dataset directory (CSV files: graph edges, stories, votes, top
// users), printing summary statistics.
//
// Usage:
//
//	diggsim -out DIR [-small] [-seed N] [-submissions N] [-users N] [-diversity] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/digg"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	small := flag.Bool("small", false, "use the reduced corpus configuration")
	seed := flag.Uint64("seed", 20060630, "corpus seed")
	users := flag.Int("users", 0, "override user count")
	submissions := flag.Int("submissions", 0, "override submission count")
	diversity := flag.Bool("diversity", false, "use the post-2006 diversity promotion rule")
	workers := flag.Int("workers", 0, "story-simulation workers (0 = one per CPU; output is identical for any value)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "diggsim: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dataset.DefaultConfig()
	if *small {
		cfg = dataset.SmallConfig()
	}
	cfg.Seed = *seed
	if *users > 0 {
		cfg.Users = *users
	}
	if *submissions > 0 {
		cfg.Submissions = *submissions
	}
	if *diversity {
		cfg.Policy = digg.NewDiversityPromotion()
	}
	cfg.Workers = *workers

	start := time.Now()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}

	interesting := 0
	for _, s := range ds.FrontPage {
		if core.Interesting(s.VoteCount()) {
			interesting++
		}
	}
	fmt.Printf("corpus generated in %v and saved to %s\n",
		time.Since(start).Round(time.Millisecond), *out)
	fmt.Printf("  users:                 %d\n", ds.Graph.NumNodes())
	fmt.Printf("  fan links:             %d\n", ds.Graph.NumEdges())
	fmt.Printf("  submissions:           %d\n", len(ds.Stories))
	fmt.Printf("  promoted:              %d\n", ds.Platform.PromotedCount())
	fmt.Printf("  front-page sample:     %d (%d interesting)\n", len(ds.FrontPage), interesting)
	fmt.Printf("  upcoming at snapshot:  %d\n", len(ds.UpcomingAtSnapshot))
	fmt.Printf("  top-user list:         %d\n", len(ds.TopUsers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggsim:", err)
	os.Exit(1)
}
