package main

// watch.go implements `diggstats -watch URL`: a live terminal view of
// a running diggd's metrics timeline (GET /debug/timeline). Each
// refresh renders the SLO burn-rate statuses, the freshness families
// with their latest quantiles, and the busiest series as sparklines
// of per-step rates — the operator's glanceable answer to "is the
// site fresh right now, and is it getting worse?". The sparkline
// window is short (two minutes at five-second buckets) because this
// view is for watching a deploy or an incident, not for history; the
// server retains ~15 minutes for ad-hoc queries.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"diggsim/internal/apiv1"
)

const (
	watchWindow = 120 // seconds of sparkline history
	watchStep   = 5   // seconds per sparkline bucket
	watchRows   = 14  // cap on non-freshness series rows per frame
)

// watchTimeline polls /debug/timeline every interval and repaints the
// terminal. With once it renders a single frame without touching the
// screen, for piping into files or CI logs.
func watchTimeline(base string, interval time.Duration, once bool) {
	url := strings.TrimSuffix(base, "/") +
		fmt.Sprintf("/debug/timeline?window=%d&step=%d", watchWindow, watchStep)
	client := &http.Client{Timeout: 10 * time.Second}
	for {
		frame, err := fetchFrame(client, url)
		if err != nil {
			if once {
				fatal(err)
			}
			// A watch session rides out server restarts: report and retry.
			frame = fmt.Sprintf("diggstats -watch: %v (retrying every %s)\n", err, interval)
		}
		if once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear to end of screen — full clears flicker.
		fmt.Print("\x1b[H\x1b[J" + frame)
		time.Sleep(interval)
	}
}

// fetchFrame fetches one timeline dump and renders it to a string, so
// the terminal repaint is a single write.
func fetchFrame(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var dump apiv1.TimelineDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return "", fmt.Errorf("decoding %s: %w", url, err)
	}
	return renderFrame(&dump), nil
}

func renderFrame(dump *apiv1.TimelineDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics timeline — %.0fs window, %.0fs steps — %s\n",
		dump.WindowSeconds, dump.StepSeconds, time.Now().Format("15:04:05"))

	// Burn status first: it is the line an operator is here for.
	if len(dump.Burn) > 0 {
		b.WriteString("\nslo burn (error-budget consumption, 1.0x = exactly on objective):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  SLO\tOBJECTIVE\tSHORT\tLONG\tSTATUS")
		for _, bs := range dump.Burn {
			status := "ok"
			if bs.Degraded {
				status = "DEGRADED"
			}
			fmt.Fprintf(tw, "  %s\t%.2f%% < %s\t%s\t%s\t%s\n",
				bs.Name, bs.Objective*100,
				fmtMillis(bs.ThresholdMillis), fmtBurn(bs.Short), fmtBurn(bs.Long), status)
		}
		tw.Flush()
	}

	fresh, active := splitSeries(dump.Series)

	if len(fresh) > 0 {
		b.WriteString("\nfreshness (write → visible):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  SPAN\tRATE\tP50\tP99\t"+sparkHeader())
		for _, s := range fresh {
			last := lastPoint(s)
			fmt.Fprintf(tw, "  %s\t%s/s\t%s\t%s\t%s\n",
				freshLabel(s), fmtRate(last.Rate),
				fmtMillis(last.P50Millis), fmtMillis(last.P99Millis),
				sparkline(rates(s)))
		}
		tw.Flush()
	}

	if len(active) > 0 {
		b.WriteString("\nbusiest series (per-step rate):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  SERIES\tNOW\t"+sparkHeader())
		for _, s := range active {
			last := lastPoint(s)
			now := fmtRate(last.Rate) + "/s"
			if s.Kind == "gauge" {
				now = fmtRate(float64(last.Value))
			}
			extra := ""
			if s.Kind == "histogram" && last.P99Millis > 0 {
				extra = "  p99=" + fmtMillis(last.P99Millis)
			}
			fmt.Fprintf(tw, "  %s\t%s\t%s%s\n", seriesLabel(s), now, sparkline(rates(s)), extra)
		}
		tw.Flush()
	}
	return b.String()
}

// splitSeries separates the freshness families (always shown, in
// pipeline order) from everything else (shown busiest-first, capped).
func splitSeries(series []apiv1.TimelineSeries) (fresh, active []apiv1.TimelineSeries) {
	for _, s := range series {
		if strings.HasPrefix(s.Name, "diggsim_freshness_") {
			fresh = append(fresh, s)
			continue
		}
		if maxRate(s) > 0 || (s.Kind == "gauge" && lastPoint(s).Value != 0) {
			active = append(active, s)
		}
	}
	sort.SliceStable(fresh, func(i, j int) bool {
		return freshOrder(fresh[i].Name) < freshOrder(fresh[j].Name)
	})
	sort.SliceStable(active, func(i, j int) bool {
		// Gauges last — they are context, not traffic.
		gi, gj := active[i].Kind == "gauge", active[j].Kind == "gauge"
		if gi != gj {
			return gj
		}
		return maxRate(active[i]) > maxRate(active[j])
	})
	if len(active) > watchRows {
		active = active[:watchRows]
	}
	return fresh, active
}

// freshOrder ranks the freshness families in pipeline order: accept →
// front page, publish → SSE client, commit → follower.
func freshOrder(name string) int {
	switch {
	case strings.Contains(name, "frontpage"):
		return 0
	case strings.Contains(name, "sse"):
		return 1
	case strings.Contains(name, "follower"):
		return 2
	}
	return 3
}

// freshLabel shortens a freshness family to its span name, keeping
// the source label that distinguishes HTTP writes from live-sim steps.
func freshLabel(s apiv1.TimelineSeries) string {
	name := strings.TrimSuffix(strings.TrimPrefix(s.Name, "diggsim_freshness_"), "_seconds")
	if s.Labels != "" {
		name += "{" + s.Labels + "}"
	}
	return name
}

func seriesLabel(s apiv1.TimelineSeries) string {
	name := s.Name
	if s.Labels != "" {
		name += "{" + s.Labels + "}"
	}
	return name
}

func lastPoint(s apiv1.TimelineSeries) apiv1.TimelinePoint {
	if len(s.Points) == 0 {
		return apiv1.TimelinePoint{}
	}
	return s.Points[len(s.Points)-1]
}

// rates extracts the sparkline values: per-step rate for counters and
// histograms, the sampled value for gauges.
func rates(s apiv1.TimelineSeries) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		if s.Kind == "gauge" {
			out[i] = float64(p.Value)
		} else {
			out[i] = p.Rate
		}
	}
	return out
}

func maxRate(s apiv1.TimelineSeries) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Rate > m {
			m = p.Rate
		}
	}
	return m
}

// sparkRunes is the 8-level block ramp sparklines are drawn with.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled against their own maximum — each row
// shows its shape over time, not cross-row magnitude (the NOW column
// carries that).
func sparkline(vals []float64) string {
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(math.Round(v / max * float64(len(sparkRunes)-1)))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func sparkHeader() string {
	return fmt.Sprintf("LAST %dS", watchWindow)
}

// fmtBurn renders one burn window: the multiplier, or how much of the
// window has data yet.
func fmtBurn(w apiv1.BurnWindow) string {
	if w.Total == 0 {
		if w.CoveredSeconds < w.WindowSeconds {
			return fmt.Sprintf("(%.0fs/%.0fs)", w.CoveredSeconds, w.WindowSeconds)
		}
		return "idle"
	}
	return fmt.Sprintf("%.2fx", w.Burn)
}

// fmtRate renders an events-per-second (or gauge) value compactly.
func fmtRate(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
