package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"diggsim/internal/repl"
)

func writeState(t *testing.T, dir string, st repl.State) {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, repl.StateFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReportReplNoStateFile(t *testing.T) {
	if reportRepl(t.TempDir(), time.Second) {
		t.Error("directory without repl-state.json flagged as beyond bound")
	}
}

func TestReportReplLagBound(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	writeState(t, dir, repl.State{
		Primary:         "http://primary:8080",
		UpdatedUnixNano: now.UnixNano(),
		ReadOnly:        true,
		Shards: []repl.StateShard{
			{Shard: 0, AppliedLSN: 90, ShippedLSN: 100,
				LastContact: now.Add(-10 * time.Second).UnixNano()},
		},
	})
	if reportRepl(dir, 0) {
		t.Error("max-lag 0 must disable the bound")
	}
	if reportRepl(dir, time.Minute) {
		t.Error("10s-old contact flagged against a 1m bound")
	}
	if !reportRepl(dir, time.Second) {
		t.Error("10s-old contact not flagged against a 1s bound")
	}
}

func TestReportReplPromotedIgnoresBound(t *testing.T) {
	dir := t.TempDir()
	writeState(t, dir, repl.State{
		Primary:         "http://old-primary:8080",
		UpdatedUnixNano: time.Now().UnixNano(),
		ReadOnly:        false, // promoted: no longer lagging anyone
		Shards: []repl.StateShard{
			{Shard: 0, AppliedLSN: 100, ShippedLSN: 100, LastContact: 0},
		},
	})
	if reportRepl(dir, time.Second) {
		t.Error("promoted node flagged by the follower lag bound")
	}
}

func TestReportReplNeverContacted(t *testing.T) {
	dir := t.TempDir()
	writeState(t, dir, repl.State{
		Primary:         "http://primary:8080",
		UpdatedUnixNano: time.Now().UnixNano(),
		ReadOnly:        true,
		Shards:          []repl.StateShard{{Shard: 0, LastContact: 0}},
	})
	if !reportRepl(dir, time.Second) {
		t.Error("never-contacted follower not flagged against the bound")
	}
}
