// Command diggstats analyzes a saved dataset directory (written by
// cmd/diggsim or cmd/diggscrape): corpus summary, cascade statistics,
// the trained classifier and its cross-validation — the offline half of
// the paper's workflow, runnable on any scrape.
//
// With -wal it instead inspects a diggd durable data directory
// (written with `diggd -data-dir`): WAL segments and record counts,
// the newest checkpoint's generation, the replay span a recovery would
// process, and the genesis provenance — the operator's view of what a
// restart will do, without touching the directory. A sharded directory
// (diggd -shards N: shard-0000/ ... subdirectories) gets one report
// per shard; the exit status is 1 if any shard is corrupt. When the
// directory belongs to a replication follower (diggd -replica-of; see
// docs/replication.md), the report adds the recorded position per
// shard — applied vs shipped LSN and last-contact age — and -max-lag
// makes the exit status non-zero when the follower has not heard from
// its primary within that bound.
//
// With -obs it queries a running diggd's observability dump
// (GET /debug/obs) and pretty-prints every latency instrument's
// quantile summary plus the retained slow traces — the terminal
// counterpart of the Prometheus exposition at GET /metrics; see
// docs/observability.md.
//
// With -watch it polls a running diggd's metrics timeline
// (GET /debug/timeline) and repaints a live terminal view: SLO
// burn-rate statuses, write→visible freshness quantiles, and
// sparklines of the busiest series — the glanceable freshness view
// for deploys and incidents. -interval sets the refresh period and
// -once renders a single frame for logs or CI.
//
// Usage:
//
//	diggstats -data DIR [-tree] [-cv]
//	diggstats -wal DIR [-max-lag 30s]
//	diggstats -obs http://localhost:8080
//	diggstats -watch http://localhost:8080 [-interval 2s] [-once]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"diggsim/internal/apiv1"
	"diggsim/internal/cascade"
	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/durable"
	"diggsim/internal/mltree"
	"diggsim/internal/repl"
	"diggsim/internal/rng"
	"diggsim/internal/shard"
	"diggsim/internal/stats"
	"diggsim/internal/timeseries"
)

func main() {
	data := flag.String("data", "", "dataset directory")
	walDir := flag.String("wal", "", "inspect a diggd durable data directory (WAL + checkpoints) instead of analyzing a dataset")
	obsURL := flag.String("obs", "", "query a running diggd's observability dump (base URL, e.g. http://localhost:8080)")
	watchURL := flag.String("watch", "", "live terminal view of a running diggd's metrics timeline (base URL; polls GET /debug/timeline)")
	watchInterval := flag.Duration("interval", 2*time.Second, "with -watch: refresh period")
	watchOnce := flag.Bool("once", false, "with -watch: render one frame and exit (no screen clearing; for logs and CI)")
	showTree := flag.Bool("tree", true, "print the learned decision tree")
	runCV := flag.Bool("cv", true, "run 10-fold cross-validation")
	seed := flag.Uint64("seed", 99, "cross-validation shuffle seed")
	maxLag := flag.Duration("max-lag", 0, "with -wal: exit non-zero when a follower's last primary contact is older than this (0 disables)")
	flag.Parse()
	if *walDir != "" {
		inspectWAL(*walDir, *maxLag)
		return
	}
	if *obsURL != "" {
		inspectObs(*obsURL)
		return
	}
	if *watchURL != "" {
		watchTimeline(*watchURL, *watchInterval, *watchOnce)
		return
	}
	if *data == "" {
		fmt.Fprintln(os.Stderr, "diggstats: -data is required (or -wal to inspect a data directory, -obs to query a live server)")
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.Load(*data)
	if err != nil {
		fatal(err)
	}
	promoted := 0
	var finals []float64
	for _, s := range ds.Stories {
		if s.Promoted {
			promoted++
		}
		finals = append(finals, float64(s.VoteCount()))
	}
	fmt.Printf("corpus: %d stories (%d promoted), %d users, %d fan links\n",
		len(ds.Stories), promoted, ds.Graph.NumNodes(), ds.Graph.NumEdges())
	sum := stats.Summarize(finals)
	fmt.Printf("votes per story: median=%.0f mean=%.0f max=%.0f\n",
		sum.Median, sum.Mean, sum.Max)

	if len(ds.FrontPage) == 0 {
		fmt.Println("no front-page sample in this dataset; nothing to train on")
		return
	}
	fmt.Printf("\nfront-page sample: %d stories\n", len(ds.FrontPage))

	// Cascade statistics (Fig. 3/4 ingredients).
	all := cascade.AnalyzeAll(ds.Graph, ds.FrontPage)
	var in10 []float64
	interesting := 0
	for _, st := range all {
		in10 = append(in10, float64(st.InNet10))
		if core.Interesting(st.FinalVotes) {
			interesting++
		}
	}
	fmt.Printf("interesting (>520 votes): %d/%d\n", interesting, len(all))
	fmt.Printf("in-network votes within first 10: median=%.0f, >=5 for %.0f%% of stories\n",
		stats.Median(in10), 100*frac(in10, 5))

	// Novelty decay.
	if med, n := timeseries.MedianHalfLife(ds.FrontPage, 4*60, 5*24*60); n > 0 {
		fmt.Printf("post-promotion half-life: median %.1f h over %d fitted stories\n", med/60, n)
	}

	// Classifier.
	examples := core.ExtractAll(ds.Graph, ds.FrontPage)
	p, err := core.Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if *showTree {
		fmt.Printf("\nlearned decision tree (v10, fans1):\n%s\n", p.Tree.String())
	}
	if *runCV {
		cv, err := core.CrossValidate(examples, nil, mltree.DefaultConfig(), 10, rng.New(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n10-fold CV: %d/%d correct (%.1f%%)  [%s]\n",
			cv.Correct(), cv.Total(), 100*cv.Accuracy(), cv)
	}
	if auc, err := p.AUC(examples); err == nil {
		fmt.Printf("training AUC: %.3f\n", auc)
	}
}

// inspectWAL reports on a diggd data directory — unsharded (WAL at
// the root) or sharded (shard-NNNN/ subdirectories, each inspected in
// turn), plus any recorded replication position. Exits 1 if any shard
// is corrupt, missing its checkpoint, or (with -max-lag) the follower
// is beyond the lag bound.
func inspectWAL(dir string, maxLag time.Duration) {
	bad := false
	if shard.Exists(dir) {
		dirs, err := shard.ShardDirs(dir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sharded data directory: %d shards\n", len(dirs))
		unhealthy := 0
		for i, sd := range dirs {
			fmt.Printf("\n--- shard %d (%s) ---\n", i, sd)
			info, err := durable.Inspect(sd)
			if err != nil {
				fmt.Println("inspect failed:", err)
				unhealthy++
				continue
			}
			fmt.Print(info.String())
			if info.Corrupt != nil || info.Checkpoint == nil {
				unhealthy++
			}
		}
		if unhealthy > 0 {
			fmt.Printf("\n%d of %d shards unhealthy\n", unhealthy, len(dirs))
			bad = true
		}
	} else {
		info, err := durable.Inspect(dir)
		if err != nil {
			fatal(err)
		}
		fmt.Print(info.String())
		if info.Corrupt != nil || info.Checkpoint == nil {
			bad = true
		}
	}
	if reportRepl(dir, maxLag) {
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

// reportRepl prints the replication position recorded in the data
// directory's repl-state.json, when present, and reports whether the
// node is beyond maxLag. The file is written by a running follower
// about once a second, so for a live node "last contact" is accurate
// to roughly that; for a dead node it dates the moment replication
// stopped. The lag bound only applies while the node is still
// read-only — a promoted follower is a primary and has no lag.
func reportRepl(dir string, maxLag time.Duration) bool {
	st, err := repl.ReadState(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false // never ran as a follower
		}
		fmt.Println("\nreplication state unreadable:", err)
		return true
	}
	now := time.Now()
	role := "promoted primary (writable)"
	if st.ReadOnly {
		role = "read-only follower"
	}
	fmt.Printf("\nreplication: %s of %s, position recorded %s ago\n",
		role, st.Primary, fmtAge(now.Sub(time.Unix(0, st.UpdatedUnixNano))))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tAPPLIED\tSHIPPED\tBEHIND\tLAST CONTACT")
	beyond := false
	for _, sh := range st.Shards {
		behind := uint64(0)
		if sh.ShippedLSN > sh.AppliedLSN {
			behind = sh.ShippedLSN - sh.AppliedLSN
		}
		contact := "never"
		if sh.LastContact > 0 {
			age := now.Sub(time.Unix(0, sh.LastContact))
			contact = fmtAge(age) + " ago"
			if maxLag > 0 && st.ReadOnly && age > maxLag {
				beyond = true
			}
		} else if maxLag > 0 && st.ReadOnly {
			beyond = true
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\n",
			sh.Shard, sh.AppliedLSN, sh.ShippedLSN, behind, contact)
	}
	tw.Flush()
	if beyond {
		fmt.Printf("follower is beyond the -max-lag bound (%s)\n", maxLag)
	}
	return beyond
}

// fmtAge renders a duration at operator precision: milliseconds under
// a second, tenths of a second under a minute, whole seconds beyond.
func fmtAge(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	switch {
	case d < time.Second:
		return d.Round(time.Millisecond).String()
	case d < time.Minute:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Second).String()
	}
}

// inspectObs fetches a running diggd's GET /debug/obs dump and
// renders the operator's terminal view of it: one table row per
// instrument series (quantiles in milliseconds, same numbers the
// Prometheus exposition carries in seconds), then the retained slow
// traces newest-first with their span breakdowns.
func inspectObs(base string) {
	url := strings.TrimSuffix(base, "/") + "/debug/obs"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
	var dump apiv1.ObsDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		fatal(fmt.Errorf("decoding %s: %w", url, err))
	}

	// Group-stable ordering: registration order already groups series
	// of one family together; a secondary sort by labels keeps
	// per-shard and per-route series tidy without splitting families.
	sort.SliceStable(dump.Instruments, func(i, j int) bool {
		a, b := dump.Instruments[i], dump.Instruments[j]
		if a.Name != b.Name {
			return false // keep registration order across families
		}
		return a.Labels < b.Labels
	})

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "INSTRUMENT\tCOUNT\tP50\tP90\tP99\tP99.9\tMAX\tTOTAL")
	for _, in := range dump.Instruments {
		name := in.Name
		if in.Labels != "" {
			name += "{" + in.Labels + "}"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			name, in.Count,
			fmtMillis(in.P50Millis), fmtMillis(in.P90Millis),
			fmtMillis(in.P99Millis), fmtMillis(in.P999Millis),
			fmtMillis(in.MaxMillis), fmtMillis(in.TotalMillis))
	}
	tw.Flush()

	fmt.Printf("\nslow traces: %d total", dump.SlowTotal)
	if n := len(dump.SlowTraces); n > 0 {
		fmt.Printf(", %d retained (newest first)", n)
	}
	fmt.Println()
	for _, tr := range dump.SlowTraces {
		start := time.UnixMilli(tr.StartUnixMillis).UTC().Format("15:04:05.000")
		fmt.Printf("  %s %s %s %s -> %d in %s\n",
			tr.ID, start, tr.Method, tr.Path, tr.Status, fmtMillis(tr.DurationMillis))
		for _, sp := range tr.Spans {
			fmt.Printf("    +%s %s %s\n", fmtMillis(sp.OffsetMillis), sp.Name, fmtMillis(sp.DurationMillis))
		}
	}
}

// fmtMillis renders a millisecond value at the precision that matters
// for it: microsecond detail below 1ms, tenths above, seconds when
// large.
func fmtMillis(ms float64) string {
	switch {
	case ms == 0:
		return "0"
	case ms < 1:
		return fmt.Sprintf("%.0fµs", ms*1000)
	case ms < 1000:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fs", ms/1000)
	}
}

func frac(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggstats:", err)
	os.Exit(1)
}
