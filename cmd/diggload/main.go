// Command diggload runs one mixed load scenario from internal/load
// against a running diggd and emits a BENCH_load.json document in the
// cmd/benchjson envelope (generated_at, go_version, host facts, notes)
// with the full scenario report — per-population latency quantiles,
// swarm stream/event accounting, server-side instrument summaries, and
// the SLO verdict.
//
// Usage:
//
//	diggload -base-url http://127.0.0.1:8080 \
//	    [-scenario scenario.json] [-duration 10] [-ramp 1] \
//	    [-read-rps 50] [-crawl-rps 10] [-write-rps 5] [-swarm 100] \
//	    [-freshness-rps 2] \
//	    [-out BENCH_load.json] [-notes "..."] [-require read,swarm]
//
// A scenario file (the JSON form of load.Scenario) sets the baseline;
// any population flag given on the command line overrides it. The exit
// code is the gate: 0 when every SLO held (and every -require'd
// population did work), 1 otherwise — so a CI job needs no JSON
// scraping to fail on a regression. Use -no-gate to always exit 0 and
// let a downstream consumer judge the document.
//
// Run the target diggd with -trust-loopback when it also enforces
// -rate: the harness is deliberately hostile to per-IP limits, and all
// of its traffic comes from one loopback address. See docs/load.md for
// the runbook and for how to read the numbers on small machines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"diggsim/internal/load"
)

// document is the emitted file: the benchjson host envelope wrapping
// the load report.
type document struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	CPU         string       `json:"cpu,omitempty"`
	Notes       string       `json:"notes,omitempty"`
	Load        *load.Report `json:"load"`
}

func main() {
	baseURL := flag.String("base-url", "", "diggd server root, e.g. http://127.0.0.1:8080 (overrides the scenario file)")
	scenarioPath := flag.String("scenario", "", "JSON scenario file (load.Scenario); flags override its fields")
	duration := flag.Float64("duration", 0, "total run seconds, ramp included")
	ramp := flag.Float64("ramp", 0, "ramp-up seconds")
	seed := flag.Uint64("seed", 0, "RNG seed for Zipf ranks and voter picks")
	zipfS := flag.Float64("zipf-s", 0, "Zipf skew exponent for reader story ranks")
	readRPS := flag.Float64("read-rps", 0, "reader ops/sec (front page + Zipf story reads)")
	crawlRPS := flag.Float64("crawl-rps", 0, "crawler pages/sec (/v1/stories, /v1/frontpage cursors)")
	writeRPS := flag.Float64("write-rps", 0, "writer batch ops/sec (digg batches + submits)")
	freshRPS := flag.Float64("freshness-rps", 0, "freshness probes/sec (submit one story, poll until the read path serves it)")
	writeBatch := flag.Int("write-batch", 0, "diggs per write batch")
	swarm := flag.Int("swarm", 0, "concurrent SSE streams to hold on /api/stream")
	swarmRPS := flag.Float64("swarm-connect-rps", 0, "SSE connection-establishment rate")
	out := flag.String("out", "BENCH_load.json", "output file (- for stdout)")
	notes := flag.String("notes", "", "free-form note recorded in the document")
	require := flag.String("require", "", "comma-separated populations that must report nonzero ops (e.g. read,crawl,write,swarm)")
	noGate := flag.Bool("no-gate", false, "always exit 0; report the verdict in the document only")
	flag.Parse()

	var sc load.Scenario
	if *scenarioPath != "" {
		raw, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &sc); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *scenarioPath, err))
		}
	}
	// Flags the user actually passed override the file, so a committed
	// scenario can be rerun with one knob turned.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	override := func(name string, apply func()) {
		if set[name] {
			apply()
		}
	}
	override("base-url", func() { sc.BaseURL = *baseURL })
	override("duration", func() { sc.DurationSeconds = *duration })
	override("ramp", func() { sc.RampSeconds = *ramp })
	override("seed", func() { sc.Seed = *seed })
	override("zipf-s", func() { sc.ZipfS = *zipfS })
	override("read-rps", func() { sc.ReadRPS = *readRPS })
	override("crawl-rps", func() { sc.CrawlRPS = *crawlRPS })
	override("write-rps", func() { sc.WriteRPS = *writeRPS })
	override("write-batch", func() { sc.WriteBatch = *writeBatch })
	override("freshness-rps", func() { sc.FreshnessRPS = *freshRPS })
	override("swarm", func() { sc.SwarmSize = *swarm })
	override("swarm-connect-rps", func() { sc.SwarmConnectRPS = *swarmRPS })
	if sc.BaseURL == "" {
		fatal(fmt.Errorf("need -base-url (or base_url in the scenario file)"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := load.Run(ctx, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "diggload: scenario finished in %v\n", time.Since(start).Round(time.Millisecond))
	printSummary(rep)

	missing := missingPopulations(rep, *require)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "diggload: FAIL required population %q did no work\n", name)
	}

	doc := document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		CPU:         cpuModel(),
		Notes:       *notes,
		Load:        rep,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "diggload: wrote %s\n", *out)
	}

	if !*noGate && (!rep.Pass || len(missing) > 0) {
		os.Exit(1)
	}
}

// printSummary writes the human-readable run digest to stderr: one
// line per population, then the gate verdicts.
func printSummary(rep *load.Report) {
	w := os.Stderr
	fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %9s %9s %9s\n",
		"population", "target/s", "achieved/s", "ops", "errors", "p50 ms", "p99 ms", "max ms")
	rows := rep.Populations
	if rep.Combined != nil {
		rows = append(rows[:len(rows):len(rows)], *rep.Combined)
	}
	for _, p := range rows {
		fmt.Fprintf(w, "%-10s %10.1f %10.1f %8d %8d %9.2f %9.2f %9.2f\n",
			p.Name, p.TargetRPS, p.AchievedRPS, p.Ops, p.Errors, p.P50Millis, p.P99Millis, p.MaxMillis)
		if p.Name == "swarm" {
			fmt.Fprintf(w, "%-10s streams=%d events=%d lag_events=%d dropped=%d\n",
				"", p.Streams, p.Events, p.LagEvents, p.DroppedEvents)
		}
	}
	for _, s := range rep.SLOs {
		verdict := "PASS"
		switch {
		case s.Skipped:
			verdict = "SKIP"
		case !s.Pass:
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "slo %-22s %s observed=%.3f threshold=%.3f (%s)\n",
			s.Name, verdict, s.Observed, s.Threshold, s.Detail)
	}
	overall := "PASS"
	if !rep.Pass {
		overall = "FAIL"
	}
	fmt.Fprintf(w, "diggload: scenario %s\n", overall)
}

// missingPopulations returns the -require'd populations that reported
// zero ops (or are absent entirely).
func missingPopulations(rep *load.Report, require string) []string {
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p := rep.Population(name)
		if p == nil || p.Ops == 0 {
			missing = append(missing, name)
		}
	}
	return missing
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diggload:", err)
	os.Exit(1)
}

// cpuModel best-effort reads the CPU model string, matching the "cpu:"
// line benchjson records from go test output.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.IndexByte(rest, ':'); i >= 0 {
				return strings.TrimSpace(rest[i+1:])
			}
		}
	}
	return ""
}
