package diggsim

// bench_test.go holds one benchmark per paper artifact (every table and
// figure, the in-text boundary check, the §6 extensions and the design
// ablations). Each benchmark regenerates its experiment end to end
// against a shared small corpus, so `go test -bench=.` doubles as a
// full reproduction smoke run and reports the cost of each analysis.

import (
	"sync"
	"testing"

	"diggsim/internal/dataset"
	"diggsim/internal/experiments"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		var ds *dataset.Dataset
		ds, benchErr = dataset.Generate(dataset.SmallConfig())
		if benchErr == nil {
			benchRunner = &experiments.Runner{DS: ds, Seed: 99}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRunner
}

func benchExperiment(b *testing.B, id string) {
	r := runner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatalf("%s produced empty report", id)
		}
	}
}

// BenchmarkCorpusGeneration measures the full synthetic-corpus pipeline
// (graph generation + simulating every story's lifetime), the substrate
// behind every other benchmark. Workers is pinned to 1 so the number
// tracks the single-core event-driven scheduler; see
// BenchmarkCorpusGenerationParallel for the pooled path.
func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := dataset.SmallConfig()
	cfg.Submissions = 100
	cfg.Workers = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusGenerationParallel measures the same pipeline with
// the worker pool sized to the machine (Workers=0). The corpus it
// produces is bit-identical to the sequential one; the delta against
// BenchmarkCorpusGeneration is pure scheduling win.
func BenchmarkCorpusGenerationParallel(b *testing.B) {
	cfg := dataset.SmallConfig()
	cfg.Submissions = 100
	cfg.Workers = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1VoteTimeSeries regenerates Fig. 1 (vote time series of
// front-page stories: slow queue accumulation, post-promotion burst,
// saturation).
func BenchmarkFig1VoteTimeSeries(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2aFinalVotesHistogram regenerates Fig. 2(a) (final vote
// histogram; ~20% under 500 votes, ~20% over 1500).
func BenchmarkFig2aFinalVotesHistogram(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2bUserActivity regenerates Fig. 2(b) (log-log user
// submission and vote activity distributions).
func BenchmarkFig2bUserActivity(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig3aInfluence regenerates Fig. 3(a) (story influence at
// submission / after 10 / after 20 votes).
func BenchmarkFig3aInfluence(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3bCascades regenerates Fig. 3(b) (in-network vote counts
// after 10/20/30 votes).
func BenchmarkFig3bCascades(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig4Interestingness regenerates Fig. 4 (inverse relation
// between early in-network votes and final votes, at 6/10/20 votes).
func BenchmarkFig4Interestingness(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5DecisionTree regenerates Fig. 5 (C4.5 tree on v10+fans1
// with 10-fold cross-validation).
func BenchmarkFig5DecisionTree(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTab1HoldoutPrediction regenerates the §5.2 holdout table
// (top-user upcoming stories; predictor precision vs Digg's promotion).
func BenchmarkTab1HoldoutPrediction(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkFig6FriendsFans regenerates the final unnumbered figure
// (fans+1 vs friends+1 log-log scatter, all vs top users).
func BenchmarkFig6FriendsFans(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkText1PromotionBoundary regenerates the in-text 43/42-vote
// promotion boundary check.
func BenchmarkText1PromotionBoundary(b *testing.B) { benchExperiment(b, "text1") }

// BenchmarkExt1EpidemicThreshold regenerates the §6 extension: SIS
// threshold sweep on scale-free vs Erdős–Rényi graphs.
func BenchmarkExt1EpidemicThreshold(b *testing.B) { benchExperiment(b, "ext1") }

// BenchmarkExt2ModularCascades regenerates the §6 extension:
// independent cascades on modular vs homogeneous graphs.
func BenchmarkExt2ModularCascades(b *testing.B) { benchExperiment(b, "ext2") }

// BenchmarkAblPromotionPolicy regenerates the promotion-policy ablation
// (classic vs diversity-weighted).
func BenchmarkAblPromotionPolicy(b *testing.B) { benchExperiment(b, "abl-policy") }

// BenchmarkAblFeatureSets regenerates the classifier feature-set
// ablation (v6/v10/v20/fans1 combinations).
func BenchmarkAblFeatureSets(b *testing.B) { benchExperiment(b, "abl-features") }

// BenchmarkAblSpreadMechanisms regenerates the spread-mechanism
// ablation (network-only vs interest-only corpora).
func BenchmarkAblSpreadMechanisms(b *testing.B) { benchExperiment(b, "abl-mechanism") }

// BenchmarkExt3CascadeDepth regenerates the cascade-depth study
// (recommendation chains stay shallow).
func BenchmarkExt3CascadeDepth(b *testing.B) { benchExperiment(b, "ext3") }

// BenchmarkAblGraphSubstrate regenerates the fan-graph substrate
// ablation (preferential attachment vs ER vs flat configuration model).
func BenchmarkAblGraphSubstrate(b *testing.B) { benchExperiment(b, "abl-graph") }

// BenchmarkExt4NoveltyDecay regenerates the post-promotion half-life
// recovery (Wu & Huberman's one-day decay).
func BenchmarkExt4NoveltyDecay(b *testing.B) { benchExperiment(b, "ext4") }

// BenchmarkAblThreshold regenerates the interestingness-threshold
// robustness ablation (the paper's footnote 3).
func BenchmarkAblThreshold(b *testing.B) { benchExperiment(b, "abl-threshold") }
