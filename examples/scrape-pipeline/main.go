// Scrape-pipeline: the paper's data-collection workflow end to end,
// entirely in-process but over a real TCP connection — serve a
// simulated Digg over HTTP, crawl it with the concurrent scraper, save
// the dataset to disk, reload it, and run the cascade analysis on the
// reconstruction.
//
// Run with:
//
//	go run ./examples/scrape-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"diggsim/internal/cascade"
	"diggsim/internal/dataset"
	"diggsim/internal/httpapi"
)

func main() {
	// 1. Generate the "site" and serve it on a loopback listener.
	cfg := dataset.SmallConfig()
	cfg.Submissions = 200
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(ds.Platform, cfg.SnapshotAt, ds.RankOf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpServer.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	defer httpServer.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("serving simulated Digg at %s\n", baseURL)

	// 2. Crawl it the way the paper crawled digg.com.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := httpapi.NewClient(baseURL)
	start := time.Now()
	scraped, err := httpapi.Scrape(ctx, client, httpapi.ScrapeConfig{
		FrontPageLimit: 100, UpcomingLimit: 300, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scraped %d stories and %d fan links in %v\n",
		len(scraped.Stories), scraped.Graph.NumEdges(), time.Since(start).Round(time.Millisecond))

	// 3. Persist and reload — the offline analysis works from files.
	dir := filepath.Join(os.TempDir(), "digg-scrape-demo")
	if err := scraped.Save(dir); err != nil {
		log.Fatal(err)
	}
	reloaded, err := dataset.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset saved to %s and reloaded (%d stories)\n", dir, len(reloaded.Stories))

	// 4. Run the paper's cascade analysis on the reconstruction.
	fmt.Println("\nstory  submitterFans  influence@10votes  inNet10  final")
	shown := 0
	for _, s := range reloaded.FrontPage {
		st := cascade.Analyze(reloaded.Graph, s)
		fmt.Printf("%-5d  %-13d  %-17d  %-7d  %d\n",
			st.StoryID, st.SubmitterFans, st.InfluenceAfter10, st.InNet10, st.FinalVotes)
		if shown++; shown >= 8 {
			break
		}
	}
	fmt.Println("\nThe scraper reconstructs exactly what the paper's crawler saw:")
	fmt.Println("chronological voter lists plus fan links, from which influence and")
	fmt.Println("in-network votes are recomputed offline.")
}
