// Promotion-tuning: compare Digg's classic 43-vote promotion rule with
// the post-September-2006 "digging diversity" rule on the same
// simulated workload — the policy change the paper argues is a blunt
// instrument compared with predicting interestingness directly.
//
// Run with:
//
//	go run ./examples/promotion-tuning
package main

import (
	"fmt"
	"log"

	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/stats"
)

func main() {
	base := dataset.SmallConfig()
	base.Submissions = 300

	fmt.Println("policy             promoted  dull-on-frontpage  mean-final-votes")
	for _, pol := range []struct {
		name   string
		policy digg.PromotionPolicy
	}{
		{"classic (43 votes)", digg.NewClassicPromotion()},
		{"diversity-weighted", digg.NewDiversityPromotion()},
		{"strict diversity", &digg.DiversityPromotion{
			EffectiveThreshold: 43, InNetworkWeight: 0.25, Window: digg.Day}},
	} {
		cfg := base
		cfg.Policy = pol.policy
		ds, err := dataset.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var finals []float64
		dull := 0
		for _, s := range ds.FrontPage {
			finals = append(finals, float64(s.VoteCount()))
			if !core.Interesting(s.VoteCount()) {
				dull++
			}
		}
		dullFrac := 0.0
		if len(finals) > 0 {
			dullFrac = float64(dull) / float64(len(finals))
		}
		fmt.Printf("%-18s %8d  %16.0f%%  %16.0f\n",
			pol.name, ds.Platform.PromotedCount(), 100*dullFrac, stats.Mean(finals))
	}
	fmt.Println("\nDiscounting in-network votes keeps network-carried (dull) stories")
	fmt.Println("off the front page, at the cost of promoting fewer stories overall —")
	fmt.Println("the trade-off Digg made in September 2006. The paper's alternative:")
	fmt.Println("predict interestingness from the early vote pattern instead.")
}
