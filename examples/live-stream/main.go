// Command live-stream tails a live diggd server's event feed and
// prints promotions as they happen — the event-driven counterpart of
// polling the front page the way the paper's scraper had to.
//
// Start a live server in one terminal:
//
//	go run ./cmd/diggd -live -speedup 600
//
// then tail it in another:
//
//	go run ./examples/live-stream            # promotions only
//	go run ./examples/live-stream -all       # every event
//
// Stop with Ctrl-C.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"diggsim/internal/httpapi"
	"diggsim/internal/live"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "diggd server base URL")
	all := flag.Bool("all", false, "print every event, not just promotions")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := httpapi.NewClient(*addr)
	fmt.Printf("tailing %s/api/stream (Ctrl-C to stop)\n", *addr)
	err := c.Stream(ctx, func(ev live.Event) error {
		switch ev.Type {
		case live.EventPromote:
			fmt.Printf("[sim %6dm] PROMOTED  story %d %q by user %d with %d votes\n",
				ev.At, ev.Story, ev.Title, ev.User, ev.Votes)
		case live.EventLag:
			fmt.Printf("[sim %6dm] (stream lagged: %d events dropped)\n", ev.At, ev.Dropped)
		default:
			if *all {
				fmt.Printf("[sim %6dm] %-11s story %d user %d\n", ev.At, ev.Type, ev.Story, ev.User)
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "live-stream:", err)
		os.Exit(1)
	}
}
