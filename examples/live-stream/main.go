// Command live-stream tails a live diggd server's event feed and
// prints promotions as they happen — the event-driven counterpart of
// polling the front page the way the paper's scraper had to. Before
// tailing it catches up on the current front page by iterating the v1
// cursor pages, so the stream starts from known state.
//
// Start a live server in one terminal:
//
//	go run ./cmd/diggd -live -speedup 600
//
// then tail it in another:
//
//	go run ./examples/live-stream            # promotions only
//	go run ./examples/live-stream -all       # every event
//
// Stop with Ctrl-C.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"diggsim/internal/httpapi"
	"diggsim/internal/live"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "diggd server base URL")
	all := flag.Bool("all", false, "print every event, not just promotions")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := httpapi.NewClient(*addr)

	// Catch up: walk the front page with the v1 cursor iterator (each
	// page rides an opaque generation-stamped cursor, so the walk is
	// stable even while the server keeps promoting).
	shown := 0
	for page, err := range c.FrontPagePages(ctx, 50) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "live-stream: front page:", err)
			os.Exit(1)
		}
		for _, s := range page.Stories {
			if shown < 5 {
				fmt.Printf("[catch-up] front page #%d: story %d %q (%d votes)\n",
					shown+1, s.ID, s.Title, s.Votes)
			}
			shown++
		}
	}
	fmt.Printf("front page holds %d stories; tailing %s/v1/stream (Ctrl-C to stop)\n", shown, *addr)

	err := c.Stream(ctx, func(ev live.Event) error {
		switch ev.Type {
		case live.EventPromote:
			fmt.Printf("[sim %6dm] PROMOTED  story %d %q by user %d with %d votes\n",
				ev.At, ev.Story, ev.Title, ev.User, ev.Votes)
		case live.EventLag:
			fmt.Printf("[sim %6dm] (stream lagged: %d events dropped)\n", ev.At, ev.Dropped)
		default:
			if *all {
				fmt.Printf("[sim %6dm] %-11s story %d user %d\n", ev.At, ev.Type, ev.Story, ev.User)
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "live-stream:", err)
		os.Exit(1)
	}
}
