// Community-analysis: the paper's §6 future work, made concrete — how
// does community structure shape voting cascades? This example detects
// communities in a fan graph, then contrasts how a story spreads when
// its submitter sits inside a tight community versus bridging several.
//
// Run with:
//
//	go run ./examples/community-analysis
package main

import (
	"fmt"
	"log"

	"diggsim/internal/community"
	"diggsim/internal/epidemic"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func main() {
	r := rng.New(7)
	// A modular fan graph: 6 communities of 200 users, dense inside,
	// sparse across — the "networks with well-defined community
	// structure" of §6.
	cfg := graph.ModularConfig{Communities: 6, NodesPerComm: 200, IntraDegree: 7, InterDegree: 0.5}
	g, err := graph.Modular(r, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Detect the communities from structure alone.
	part := community.LabelPropagation(g, r, 100)
	q, err := community.Modularity(g, part.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("label propagation found %d communities, modularity Q=%.3f\n", part.Count, q)
	planted := make([]int, g.NumNodes())
	for u := range planted {
		planted[u] = cfg.CommunityOf(graph.NodeID(u))
	}
	qPlanted, _ := community.Modularity(g, planted)
	fmt.Printf("planted partition modularity Q=%.3f\n\n", qPlanted)

	// 2. Spread a story (independent cascade along fan links) from a
	// seed inside one community, at several activation probabilities.
	fmt.Println("p      activated  stayed-home  escaped")
	for _, p := range []float64{0.08, 0.12, 0.16, 0.22} {
		const trials = 30
		var total, home int
		for i := 0; i < trials; i++ {
			seed := graph.NodeID(r.Intn(cfg.NodesPerComm)) // community 0
			order := epidemic.IndependentCascade(g, []graph.NodeID{seed}, p, r.Split())
			total += len(order)
			for _, u := range order {
				if cfg.CommunityOf(u) == 0 {
					home++
				}
			}
		}
		escaped := total - home
		fmt.Printf("%.2f   %9.1f  %10.1f%%  %6.1f%%\n",
			p, float64(total)/trials,
			100*float64(home)/float64(total),
			100*float64(escaped)/float64(total))
	}
	fmt.Println("\nBelow the percolation point cascades stay trapped in the seeded")
	fmt.Println("community; above it they escape through bridge edges. This is the")
	fmt.Println("paper's \"story interesting to a narrow community\" in mechanism")
	fmt.Println("form: without independent discovery, community walls cap the")
	fmt.Println("audience — which is exactly why in-network-heavy early votes")
	fmt.Println("predict a low final count.")
}
