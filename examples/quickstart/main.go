// Quickstart: generate a small synthetic Digg corpus, train the paper's
// early-vote interestingness classifier, and use it to predict the fate
// of stories sitting in the upcoming queue.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"diggsim/internal/core"
	"diggsim/internal/dataset"
	"diggsim/internal/mltree"
)

func main() {
	// 1. Generate a corpus: a scale-free fan graph, heavy-tailed
	// submitter activity, and every story's lifetime simulated with the
	// two-mechanism spread model (fans via the Friends interface +
	// independent discovery).
	cfg := dataset.SmallConfig()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d stories, %d promoted to the front page\n",
		len(ds.Stories), ds.Platform.PromotedCount())

	// 2. Train the paper's classifier on the front-page sample:
	// attributes v10 (in-network votes within the first ten) and fans1
	// (submitter's fan count); label = more than 520 final votes.
	examples := core.ExtractAll(ds.Graph, ds.FrontPage)
	predictor, err := core.Train(examples, nil, mltree.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned decision tree (cf. paper Fig. 5):")
	fmt.Println(predictor.Tree.String())

	// 3. Predict the fate of upcoming-queue stories from their first
	// votes alone, then check against the simulated future.
	fmt.Println("\npredictions for upcoming-queue stories with >= 10 votes:")
	checked, correct := 0, 0
	for _, s := range ds.UpcomingAtSnapshot {
		if s.VotedAtOrBefore(cfg.SnapshotAt) < 10 {
			continue
		}
		ex := core.ExtractExample(ds.Graph, s)
		predicted := predictor.Predict(ex)
		actual := ex.Interesting
		mark := " "
		if predicted == actual {
			correct++
			mark = "+"
		}
		checked++
		if checked <= 10 {
			fmt.Printf("  [%s] story %-4d v10=%-2d fans1=%-4d predicted=%-5v final=%d votes\n",
				mark, s.ID, ex.V10, ex.Fans1, predicted, s.VoteCount())
		}
	}
	if checked > 0 {
		fmt.Printf("\naccuracy on %d upcoming stories: %.0f%%\n",
			checked, 100*float64(correct)/float64(checked))
	}
}
