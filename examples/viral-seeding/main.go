// Viral-seeding: who should submit your story? This example plays the
// content-producer role from the paper's introduction ("interest in
// using social networks to promote content... viral marketing") and
// measures how submitter connectivity and story quality interact.
//
// It submits the same story from submitters with very different fan
// counts and reports promotion outcome, audience reach and final votes
// — reproducing the paper's finding that well-connected submitters can
// push mediocre stories to the front page, but only genuinely
// interesting stories go on to large vote totals.
//
// Run with:
//
//	go run ./examples/viral-seeding
package main

import (
	"fmt"
	"log"

	"diggsim/internal/agent"
	"diggsim/internal/cascade"
	"diggsim/internal/digg"
	"diggsim/internal/graph"
	"diggsim/internal/rng"
)

func main() {
	r := rng.New(42)
	g, err := graph.PreferentialAttachment(r, 20000, 4, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	// Pick three submitters across the connectivity spectrum.
	ranked := graph.TopByInDegree(g, g.NumNodes())
	submitters := []struct {
		label string
		id    digg.UserID
	}{
		{"top user", ranked[0]},
		{"mid user", ranked[len(ranked)/10]},
		{"newcomer", ranked[len(ranked)-1]},
	}

	cfg := agent.NewConfig()
	fmt.Println("submitter  fans   interest  promoted@   final  inNet10  maxCascadeDepth")
	for _, interest := range []float64{0.1, 0.6} {
		for _, sub := range submitters {
			// Fresh platform per run so stories do not interact.
			p := digg.NewPlatform(g, nil)
			sim, err := agent.NewSimulator(p, cfg, r.Split())
			if err != nil {
				log.Fatal(err)
			}
			st, _, err := sim.RunStory(sub.id, "launch", interest, 0)
			if err != nil {
				log.Fatal(err)
			}
			promo := "never"
			if st.Promoted {
				promo = fmt.Sprintf("%d min", st.PromotedAt)
			}
			voters := cascade.Voters(st)
			inNet10 := cascade.InNetworkCount(g, voters, 10)
			depth := cascade.MaxDepth(cascade.Tree(g, voters))
			fmt.Printf("%-9s  %-5d  %-8.1f  %-9s  %-6d  %-7d  %d\n",
				sub.label, g.InDegree(sub.id), interest, promo,
				st.VoteCount(), inNet10, depth)
		}
		fmt.Println()
	}
	fmt.Println("Takeaways (matching the paper):")
	fmt.Println(" - a top user's fan base promotes even a dull story, but it stalls")
	fmt.Println("   under ~500 votes: the network effect buys reach, not interest;")
	fmt.Println(" - a newcomer's story only survives if it is genuinely interesting,")
	fmt.Println("   spreading through independent discovery (low inNet10);")
	fmt.Println(" - cascade chains stay shallow, echoing the viral-marketing studies")
	fmt.Println("   the paper cites (recommendation chains die after a few steps).")
}
