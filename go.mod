module diggsim

go 1.24
