package diggsim

// durable_integration_test.go exercises the persistence subsystem end
// to end: a live service drives a durable store (write-ahead log +
// checkpoints) while HTTP readers crawl the lock-free snapshot path,
// the process "crashes" (the store is abandoned without any shutdown
// hook), and recovery must reproduce the platform exactly — the
// restart-fidelity acceptance bar. Run under -race this doubles as the
// locking regression test for the durability write path.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/durable"
	"diggsim/internal/httpapi"
	"diggsim/internal/live"
	"diggsim/internal/wal"
)

// durableTestOptions: SyncAlways makes every applied command a durable
// point, so a hard stop at an arbitrary moment must lose nothing;
// tiny segments force rotation; automatic checkpoints are disabled so
// the test controls exactly where the checkpoint/tail boundary falls.
func durableTestOptions(policy digg.PromotionPolicy) durable.Options {
	return durable.Options{
		Policy:          policy,
		Sync:            wal.SyncAlways,
		SegmentSize:     32 << 10,
		CheckpointEvery: -1,
	}
}

// capture deep-copies the platform through the state codec — the
// reference state recovery is compared against.
func capture(t *testing.T, p *digg.Platform) *digg.Platform {
	t.Helper()
	q, err := digg.RestorePlatform(p.Graph, p.Policy, p.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// assertRecovered asserts the acceptance criteria's exact state match:
// Generation, Stories, FrontPage, PromotedIDs, TopUsers and per-story
// versions.
func assertRecovered(t *testing.T, want *digg.Platform, got digg.Store) {
	t.Helper()
	if got.Generation() != want.Generation() {
		t.Fatalf("generation: got %d, want %d", got.Generation(), want.Generation())
	}
	if got.NumStories() != want.NumStories() {
		t.Fatalf("stories: got %d, want %d", got.NumStories(), want.NumStories())
	}
	for i := 0; i < want.NumStories(); i++ {
		id := digg.StoryID(i)
		ws, _ := want.Story(id)
		gs, err := got.Story(id)
		if err != nil {
			t.Fatalf("story %d: %v", i, err)
		}
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("story %d differs:\nwant %+v\ngot  %+v", i, ws, gs)
		}
		if want.StoryVersion(id) != got.StoryVersion(id) {
			t.Fatalf("story %d version: got %d, want %d", i, got.StoryVersion(id), want.StoryVersion(id))
		}
	}
	if !reflect.DeepEqual(want.PromotedIDs(), got.PromotedIDs()) {
		t.Fatal("promotion order differs")
	}
	wantFP, gotFP := want.FrontPage(0), got.FrontPage(0)
	for i := range wantFP {
		if wantFP[i].ID != gotFP[i].ID {
			t.Fatalf("front page entry %d: got %d, want %d", i, gotFP[i].ID, wantFP[i].ID)
		}
	}
	if !reflect.DeepEqual(want.TopUsers(200), got.TopUsers(200)) {
		t.Fatal("top users differ")
	}
}

func TestCrashRecoveryUnderLiveService(t *testing.T) {
	dir := t.TempDir()
	cfg := dataset.SmallConfig()
	cfg.Users = 4000
	cfg.Submissions = 120
	cfg.Seed = 777
	cfg.Policy = &digg.ClassicPromotion{VoteThreshold: 15, Window: digg.Day}
	cfg.Agent.MaxVotes = 300
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := durable.Create(dir, ds.Platform, []byte(`{"test":"crash-recovery"}`),
		durableTestOptions(cfg.Policy))
	if err != nil {
		t.Fatal(err)
	}

	svc, err := live.NewService(store, live.Config{
		Seed:               5,
		StartAt:            cfg.SnapshotAt,
		Agent:              cfg.Agent,
		SubmissionsPerHour: 240,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httpapi.NewServer(store, cfg.SnapshotAt, nil)
	srv.AttachLive(svc)
	handler := srv.Handler()

	// Concurrent readers crawl the hot endpoints the whole time, so
	// -race checks the durable write path against the lock-free reads.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/v1/frontpage?limit=15", "/v1/upcoming?limit=15", "/v1/stories/5", "/v1/topusers?limit=20"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, paths[(i+g)%len(paths)], nil)
				rw := httptest.NewRecorder()
				handler.ServeHTTP(rw, req)
			}
		}(g)
	}

	// Drive the simulation deterministically, interleaving external
	// HTTP writes (single digg + a batch) with stepper activity, and
	// take a mid-run checkpoint so recovery combines checkpoint state
	// with a replayed WAL tail.
	now := cfg.SnapshotAt
	for i := 0; i < 30; i++ {
		now += 7
		if err := svc.StepTo(now); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 10:
			req := httptest.NewRequest(http.MethodPost, "/v1/stories/3/digg",
				strings.NewReader(`{"voter":3999}`))
			rw := httptest.NewRecorder()
			handler.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK && rw.Code != http.StatusConflict && rw.Code != http.StatusGone {
				t.Fatalf("digg status %d: %s", rw.Code, rw.Body)
			}
		case 15:
			req := httptest.NewRequest(http.MethodPost, "/v1/diggs:batch",
				strings.NewReader(`{"diggs":[{"story":4,"voter":3998},{"story":4,"voter":3997},{"story":4,"voter":3998}]}`))
			rw := httptest.NewRecorder()
			handler.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				t.Fatalf("batch status %d: %s", rw.Code, rw.Body)
			}
		case 20:
			// Checkpoint under the write lock, like the scheduler would.
			svc.Locker().Lock()
			err := store.Checkpoint()
			svc.Locker().Unlock()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Everything applied is durable (SyncAlways): this is the last
	// durable point. Capture it, then crash — no shutdown hook, no
	// close; the abandoned store is simply never touched again.
	svc.Locker().RLock()
	want := capture(t, store.Unwrap())
	svc.Locker().RUnlock()

	recovered, err := durable.Open(dir, durableTestOptions(cfg.Policy))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	rec := recovered.Recovery()
	if rec.Replayed == 0 {
		t.Fatal("hard stop after a mid-run checkpoint must leave a WAL tail to replay")
	}
	assertRecovered(t, want, recovered)

	// The recovered store serves and keeps evolving: attach a fresh
	// live service and step it further.
	svc2, err := live.NewService(recovered, live.Config{
		Seed:               6,
		StartAt:            now,
		Agent:              cfg.Agent,
		SubmissionsPerHour: 240,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		now += 7
		if err := svc2.StepTo(now); err != nil {
			t.Fatal(err)
		}
	}

	// Clean shutdown: final checkpoint + close. The next boot must
	// replay zero records and still match exactly.
	svc2.Locker().RLock()
	want2 := capture(t, recovered.Unwrap())
	svc2.Locker().RUnlock()
	svc2.Locker().Lock()
	err = recovered.Checkpoint()
	svc2.Locker().Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := durable.Open(dir, durableTestOptions(cfg.Policy))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if rec := reopened.Recovery(); rec.Replayed != 0 {
		t.Fatalf("clean shutdown replayed %d records, want 0", rec.Replayed)
	}
	assertRecovered(t, want2, reopened)
}
