package diggsim

// live_integration_test.go exercises the live subsystem end to end:
// a diggd-equivalent server whose platform keeps evolving in real time
// while scrapers crawl it — the paper's actual data-collection
// situation, which the static corpus server could not reproduce. Run
// under -race this is the primary writer-vs-readers safety test.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"diggsim/internal/dataset"
	"diggsim/internal/digg"
	"diggsim/internal/httpapi"
	"diggsim/internal/live"
)

// TestScrapeWhileLive starts a live server at high speedup, crawls it
// twice concurrently with the running simulation, and asserts that
// (a) every crawl terminates with internally consistent stories and
// (b) the front page actually evolves between successive crawls.
func TestScrapeWhileLive(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 4000
	cfg.Submissions = 150
	cfg.Seed = 1234
	// A lower promotion threshold makes live promotions frequent enough
	// to observe within wall-seconds; MaxVotes bounds crawl size.
	cfg.Policy = &digg.ClassicPromotion{VoteThreshold: 15, Window: digg.Day}
	cfg.Agent.MaxVotes = 400
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	svc, err := live.NewService(ds.Platform, live.Config{
		Speedup:            12000, // 200 sim-minutes per wall-second
		SubmissionsPerHour: 20,
		Tick:               5 * time.Millisecond,
		Seed:               99,
		StartAt:            cfg.SnapshotAt,
		Agent:              cfg.Agent,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httpapi.NewServer(ds.Platform, cfg.SnapshotAt, nil)
	srv.AttachLive(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- svc.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("live service: %v", err)
		}
	}()

	client := httpapi.NewClient(ts.URL)
	scrapeCfg := httpapi.ScrapeConfig{FrontPageLimit: 40, UpcomingLimit: 80, Workers: 8}
	checkConsistent := func(d *dataset.Dataset) {
		t.Helper()
		if len(d.Stories) == 0 {
			t.Fatal("scrape returned no stories")
		}
		for _, s := range d.Stories {
			if len(s.Votes) == 0 || s.Votes[0].Voter != s.Submitter {
				t.Fatalf("story %d: vote list does not start with submitter", s.ID)
			}
			for i := 1; i < len(s.Votes); i++ {
				if s.Votes[i].At < s.Votes[i-1].At {
					t.Fatalf("story %d: votes out of order at %d", s.ID, i)
				}
			}
		}
	}

	// Two crawls racing each other and the simulation writer.
	scrapeCtx, scrapeCancel := context.WithTimeout(ctx, time.Minute)
	defer scrapeCancel()
	var wg sync.WaitGroup
	results := make([]*dataset.Dataset, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = httpapi.Scrape(scrapeCtx, client, scrapeCfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent scrape %d: %v", i, err)
		}
		checkConsistent(results[i])
	}

	// The site must evolve: successive front-page crawls differ once
	// live promotions land.
	frontIDs := func() map[digg.StoryID]bool {
		front, err := client.FrontPage(ctx, 30)
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[digg.StoryID]bool, len(front))
		for _, s := range front {
			ids[s.ID] = true
		}
		return ids
	}
	first := frontIDs()
	deadline := time.After(30 * time.Second)
	for {
		second := frontIDs()
		changed := len(second) != len(first)
		for id := range second {
			if !first[id] {
				changed = true
			}
		}
		if changed {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("front page did not evolve within 30s (stats: %+v)", svc.Stats())
		case <-time.After(100 * time.Millisecond):
		}
	}

	// And the flushed dataset must reflect the live growth.
	out := svc.Export()
	if len(out.Stories) <= cfg.Submissions {
		t.Errorf("export has %d stories, no live growth over the %d-story corpus",
			len(out.Stories), cfg.Submissions)
	}
}
